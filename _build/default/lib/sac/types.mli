(** The SaC array-type lattice and its operations.

    Shape information is ordered
    [AKS (known shape) <= AKD (known rank) <= AUD (unknown rank)];
    a type is a subtype of another when the base types agree and the
    shape information refines it.  This is the subtyping that lets one
    mini-SaC function body serve arguments of any rank — the paper's
    §2 selling point. *)

val sub_shape : Ast.shape_info -> Ast.shape_info -> bool
(** [sub_shape a b]: does [a] refine [b]? *)

val subtype : Ast.ty -> Ast.ty -> bool

val join_shape : Ast.shape_info -> Ast.shape_info -> Ast.shape_info
(** Least upper bound: the most precise information valid for both. *)

val meet_shape :
  Ast.shape_info -> Ast.shape_info -> Ast.shape_info option
(** Greatest lower bound, [None] when the shapes are incompatible
    (e.g. two different known shapes).  Used to type elementwise
    operations: the operands' static shapes must be consistent and
    the result carries the more precise one. *)

val rank_of : Ast.shape_info -> int option
val is_scalar : Ast.ty -> bool
val is_array : Ast.ty -> bool

val promote : Ast.ty -> Ast.ty -> Ast.ty option
(** Numeric scalar promotion: int with double gives double; [None]
    when the bases cannot combine arithmetically. *)

val shape_to_string : Ast.shape_info -> string
val to_string : Ast.ty -> string
