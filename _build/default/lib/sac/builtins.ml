open Value

let err msg = raise (Type_error msg)

(* ---------------- binary arithmetic ---------------- *)

let float_op = function
  | Ast.Add -> ( +. )
  | Ast.Sub -> ( -. )
  | Ast.Mul -> ( *. )
  | Ast.Div -> ( /. )
  | Ast.Mod -> Float.rem
  | _ -> assert false

let int_op = function
  | Ast.Add -> ( + )
  | Ast.Sub -> ( - )
  | Ast.Mul -> ( * )
  | Ast.Div ->
    fun a b -> if b = 0 then raise Division_by_zero else a / b
  | Ast.Mod ->
    fun a b -> if b = 0 then raise Division_by_zero else a mod b
  | _ -> assert false

let cmp_op : Ast.binop -> float -> float -> bool = function
  | Ast.Eq -> ( = )
  | Ast.Ne -> ( <> )
  | Ast.Lt -> ( < )
  | Ast.Le -> ( <= )
  | Ast.Gt -> ( > )
  | Ast.Ge -> ( >= )
  | _ -> assert false

let ivec_zip op a b =
  if Array.length a <> Array.length b then
    err "int vector arithmetic: length mismatch";
  Array.init (Array.length a) (fun i -> op a.(i) b.(i))

let arith ~note op a b =
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod -> (
    match (a, b) with
    | Vint x, Vint y -> Vint (int_op op x y)
    | (Vdbl _ | Vint _), (Vdbl _ | Vint _) ->
      Vdbl (float_op op (to_float a) (to_float b))
    | Vdarr x, Vdarr y ->
      note (max (Tensor.Nd.size x) (Tensor.Nd.size y));
      Vdarr (Tensor.Nd.map2 (float_op op) x y)
    | Vdarr x, (Vdbl _ | Vint _) ->
      note (Tensor.Nd.size x);
      let k = to_float b in
      Vdarr (Tensor.Nd.map (fun v -> float_op op v k) x)
    | (Vdbl _ | Vint _), Vdarr y ->
      note (Tensor.Nd.size y);
      let k = to_float a in
      Vdarr (Tensor.Nd.map (fun v -> float_op op k v) y)
    | Vivec x, Vivec y -> Vivec (ivec_zip (int_op op) x y)
    | Vivec x, Vint k -> Vivec (Array.map (fun v -> int_op op v k) x)
    | Vint k, Vivec y -> Vivec (Array.map (fun v -> int_op op k v) y)
    | _ -> err ("bad operands for " ^ Ast.binop_name op))
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
    match (a, b) with
    | Vbool x, Vbool y ->
      (match op with
       | Ast.Eq -> Vbool (x = y)
       | Ast.Ne -> Vbool (x <> y)
       | _ -> err "booleans only compare with == and !=")
    | Vivec x, Vivec y ->
      (match op with
       | Ast.Eq -> Vbool (x = y)
       | Ast.Ne -> Vbool (x <> y)
       | _ -> err "int vectors only compare with == and !=")
    | (Vdbl _ | Vint _), (Vdbl _ | Vint _) ->
      Vbool (cmp_op op (to_float a) (to_float b))
    | _ -> err ("bad operands for " ^ Ast.binop_name op))
  | Ast.And -> Vbool (to_bool a && to_bool b)
  | Ast.Or -> Vbool (to_bool a || to_bool b)

let unary ~note op v =
  match (op, v) with
  | Ast.Neg, Vint n -> Vint (-n)
  | Ast.Neg, Vdbl x -> Vdbl (-.x)
  | Ast.Neg, Vdarr t ->
    note (Tensor.Nd.size t);
    Vdarr (Tensor.Nd.neg t)
  | Ast.Neg, Vivec iv -> Vivec (Array.map (fun x -> -x) iv)
  | Ast.Neg, Vbool _ -> err "cannot negate a boolean"
  | Ast.Not, Vbool b -> Vbool (not b)
  | Ast.Not, _ -> err "! expects a boolean"

(* ---------------- builtin functions ---------------- *)

let elementwise ~note name f = function
  | [ Vdbl x ] -> Vdbl (f x)
  | [ Vint n ] -> Vdbl (f (float_of_int n))
  | [ Vdarr t ] ->
    note (Tensor.Nd.size t);
    Vdarr (Tensor.Nd.map f t)
  | _ -> err (name ^ " expects one numeric argument")

let reduction ~note name f = function
  | [ Vdarr t ] ->
    note (Tensor.Nd.size t);
    Vdbl (f t)
  | [ Vdbl x ] -> Vdbl x
  | _ -> err (name ^ " expects a double array")

let scalar2 name f = function
  | [ a; b ] -> (
    match (a, b) with
    | Vint x, Vint y -> Vint (if f (float_of_int x) (float_of_int y) then x else y)
    | _ -> Vdbl (if f (to_float a) (to_float b) then to_float a else to_float b))
  | _ -> err (name ^ " expects two numeric arguments")

let names =
  [ "dim"; "shape"; "drop"; "take"; "sum"; "maxval"; "minval"; "fabs";
    "abs"; "sqrt"; "exp"; "log"; "min"; "max"; "zeros"; "genarray_const";
    "reshape"; "modarray_set"; "pow"; "reverse" ]

let call ~note name args =
  match name with
  | "dim" -> (
    match args with
    | [ Vdarr t ] -> Some (Vint (Tensor.Nd.rank t))
    | [ Vivec _ ] -> Some (Vint 1)
    | [ (Vdbl _ | Vint _) ] -> Some (Vint 0)
    | _ -> err "dim expects one array argument")
  | "shape" -> (
    match args with
    | [ Vdarr t ] -> Some (Vivec (Tensor.Nd.shape t))
    | [ Vivec v ] -> Some (Vivec [| Array.length v |])
    | [ (Vdbl _ | Vint _) ] -> Some (Vivec [||])
    | _ -> err "shape expects one array argument")
  | "drop" -> (
    match args with
    | [ Vivec ofs; Vdarr t ] ->
      note (Tensor.Nd.size t);
      Some (Vdarr (Tensor.Slice.drop ofs t))
    | [ Vint k; Vivec v ] ->
      (* drop on int vectors (shape surgery) *)
      let n = Array.length v in
      let k' = abs k in
      if k' > n then err "drop: vector too short"
      else
        Some
          (Vivec
             (if k >= 0 then Array.sub v k (n - k)
              else Array.sub v 0 (n - k')))
    | _ -> err "drop expects (int vector, double array) or (int, int vector)")
  | "take" -> (
    match args with
    | [ Vivec cnt; Vdarr t ] ->
      note (Tensor.Nd.size t);
      Some (Vdarr (Tensor.Slice.take cnt t))
    | [ Vint k; Vivec v ] ->
      let n = Array.length v in
      let k' = abs k in
      if k' > n then err "take: vector too short"
      else
        Some
          (Vivec
             (if k >= 0 then Array.sub v 0 k else Array.sub v (n - k') k'))
    | _ -> err "take expects (int vector, double array) or (int, int vector)")
  | "sum" -> (
    match args with
    | [ Vivec v ] -> Some (Vint (Array.fold_left ( + ) 0 v))
    | _ -> Some (reduction ~note "sum" Tensor.Nd.sum args))
  | "maxval" -> Some (reduction ~note "maxval" Tensor.Nd.maxval args)
  | "minval" -> Some (reduction ~note "minval" Tensor.Nd.minval args)
  | "fabs" | "abs" -> (
    match args with
    | [ Vint n ] -> Some (Vint (abs n))
    | _ -> Some (elementwise ~note name Float.abs args))
  | "sqrt" -> Some (elementwise ~note "sqrt" Float.sqrt args)
  | "exp" -> Some (elementwise ~note "exp" Float.exp args)
  | "log" -> Some (elementwise ~note "log" Float.log args)
  | "min" -> (
    match args with
    | [ Vdarr a; Vdarr b ] ->
      note (Tensor.Nd.size a);
      Some (Vdarr (Tensor.Nd.min2 a b))
    | _ -> Some (scalar2 "min" ( <= ) args))
  | "max" -> (
    match args with
    | [ Vdarr a; Vdarr b ] ->
      note (Tensor.Nd.size a);
      Some (Vdarr (Tensor.Nd.max2 a b))
    | _ -> Some (scalar2 "max" ( >= ) args))
  | "zeros" -> (
    match args with
    | [ Vint n ] when n >= 0 -> Some (Vivec (Array.make n 0))
    | _ -> err "zeros expects a non-negative integer")
  | "genarray_const" -> (
    match args with
    | [ Vivec s; v ] ->
      let x = to_float v in
      note (Tensor.Shape.size s);
      Some (Vdarr (Tensor.Nd.create s x))
    | _ -> err "genarray_const expects (shape, value)")
  | "reshape" -> (
    match args with
    | [ Vivec s; Vdarr t ] ->
      if Tensor.Shape.size s <> Tensor.Nd.size t then
        err "reshape: element count mismatch"
      else begin
        note (Tensor.Nd.size t);
        Some
          (Vdarr
             (Tensor.Nd.init_flat s (fun i -> Tensor.Nd.get_flat t i)))
      end
    | _ -> err "reshape expects (shape, double array)")
  | "modarray_set" -> (
    match args with
    | [ Vdarr t; Vivec iv; v ] ->
      note (Tensor.Nd.size t);
      let t' = Tensor.Nd.copy t in
      Tensor.Nd.set t' iv (to_float v);
      Some (Vdarr t')
    | _ -> err "modarray_set expects (array, index, value)")
  | "reverse" -> (
    match args with
    | [ Vivec v ] ->
      let n = Array.length v in
      Some (Vivec (Array.init n (fun i -> v.(n - 1 - i))))
    | [ Vdarr t ] when Tensor.Nd.rank t = 1 ->
      note (Tensor.Nd.size t);
      Some (Vdarr (Tensor.Slice.reverse 0 t))
    | _ -> err "reverse expects an int vector or a rank-1 double array")
  | "pow" -> (
    match args with
    | [ a; b ] -> Some (Vdbl (to_float a ** to_float b))
    | _ -> err "pow expects two numeric arguments")
  | _ -> None
