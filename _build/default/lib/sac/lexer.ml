type token =
  | IDENT of string
  | INTLIT of int
  | DBLLIT of float
  | KW of string
  | PUNCT of string
  | EOF

type located = { tok : token; line : int; col : int }

exception Error of string

let keywords =
  [ "double"; "int"; "bool"; "inline"; "return"; "if"; "else"; "for";
    "with"; "genarray"; "modarray"; "fold"; "true"; "false" ]

let describe = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | INTLIT n -> Printf.sprintf "integer %d" n
  | DBLLIT x -> Printf.sprintf "double %g" x
  | KW s -> Printf.sprintf "keyword %s" s
  | PUNCT s -> Printf.sprintf "'%s'" s
  | EOF -> "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let pos = ref 0 in
  let fail msg =
    raise (Error (Printf.sprintf "%d:%d: %s" !line !col msg))
  in
  let advance () =
    (if !pos < n then
       if src.[!pos] = '\n' then begin
         incr line;
         col := 1
       end
       else incr col);
    incr pos
  in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let emit tok = toks := { tok; line = !line; col = !col } :: !toks in
  let two_char_puncts = [ "=="; "!="; "<="; ">="; "&&"; "||"; "->" ] in
  let single_puncts = "(){}[],;:?=+-*/%<>!.|" in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if c = '/' && peek 1 = Some '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '*' && peek 1 = Some '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then fail "unterminated comment"
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        advance ()
      done;
      let s = String.sub src start (!pos - start) in
      emit (if List.mem s keywords then KW s else IDENT s)
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        advance ()
      done;
      let is_float = ref false in
      (* A dot counts as part of the number only when followed by a
         digit, so vector extents like [3] and member-ish dots stay
         unambiguous. *)
      if
        !pos < n
        && src.[!pos] = '.'
        && (match peek 1 with Some d -> is_digit d | None -> false)
      then begin
        is_float := true;
        advance ();
        while !pos < n && is_digit src.[!pos] do
          advance ()
        done
      end;
      if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
        is_float := true;
        advance ();
        if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then advance ();
        if not (!pos < n && is_digit src.[!pos]) then
          fail "malformed exponent";
        while !pos < n && is_digit src.[!pos] do
          advance ()
        done
      end;
      let s = String.sub src start (!pos - start) in
      if !is_float then emit (DBLLIT (float_of_string s))
      else
        match int_of_string_opt s with
        | Some v -> emit (INTLIT v)
        | None -> fail ("integer literal too large: " ^ s)
    end
    else begin
      let pair =
        match peek 1 with
        | Some c2 ->
          let s = Printf.sprintf "%c%c" c c2 in
          if List.mem s two_char_puncts then Some s else None
        | None -> None
      in
      match pair with
      | Some s ->
        emit (PUNCT s);
        advance ();
        advance ()
      | None ->
        if String.contains single_puncts c then begin
          emit (PUNCT (String.make 1 c));
          advance ()
        end
        else fail (Printf.sprintf "unexpected character '%c'" c)
    end
  done;
  emit EOF;
  List.rev !toks
