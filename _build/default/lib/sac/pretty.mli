(** Pretty-printing of mini-SaC programs (round-trips through
    {!Parser}). *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val fundef_to_string : Ast.fundef -> string
val program_to_string : Ast.program -> string
