open Ast

let sub_shape a b =
  match (a, b) with
  | _, Aud -> true
  | Aks s, Aks s' -> s = s'
  | Aks s, Akd n -> List.length s = n
  | Akd n, Akd n' -> n = n'
  | Akd _, Aks _ | Aud, (Aks _ | Akd _) -> false

let subtype a b = a.base = b.base && sub_shape a.shape b.shape

let join_shape a b =
  match (a, b) with
  | Aks s, Aks s' when s = s' -> Aks s
  | (Aks _ | Akd _), (Aks _ | Akd _) -> (
    let rank = function Aks s -> List.length s | Akd n -> n | Aud -> -1 in
    if rank a = rank b then Akd (rank a) else Aud)
  | _ -> Aud

let meet_shape a b =
  match (a, b) with
  | Aud, x | x, Aud -> Some x
  | Aks s, Aks s' -> if s = s' then Some (Aks s) else None
  | Aks s, Akd n | Akd n, Aks s ->
    if List.length s = n then Some (Aks s) else None
  | Akd n, Akd n' -> if n = n' then Some (Akd n) else None

let rank_of = function
  | Aks s -> Some (List.length s)
  | Akd n -> Some n
  | Aud -> None

let is_scalar t = t.shape = Aks []
let is_array t = not (is_scalar t)

let promote a b =
  if not (is_scalar a && is_scalar b) then None
  else
    match (a.base, b.base) with
    | Tint, Tint -> Some (scalar Tint)
    | (Tdouble | Tint), (Tdouble | Tint) -> Some (scalar Tdouble)
    | _ -> None

let shape_to_string = function
  | Aks [] -> ""
  | Aks s -> "[" ^ String.concat "," (List.map string_of_int s) ^ "]"
  | Akd n -> "[" ^ String.concat "," (List.init n (fun _ -> ".")) ^ "]"
  | Aud -> "[+]"

let to_string t =
  let base =
    match t.base with
    | Tdouble -> "double"
    | Tint -> "int"
    | Tbool -> "bool"
  in
  base ^ shape_to_string t.shape
