open Ast

let prec_of = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div | Mod -> 5

let rec expr ?(prec = 0) e =
  match e with
  | Dbl x ->
    let s = Printf.sprintf "%.17g" x in
    if String.contains s '.' || String.contains s 'e'
       || String.contains s 'n' (* nan/inf *)
    then s
    else s ^ ".0"
  | Int n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Bool b -> string_of_bool b
  | Var v -> v
  | Vec es ->
    "[" ^ String.concat ", " (List.map (expr ~prec:0) es) ^ "]"
  | Binop (op, a, b) ->
    let p = prec_of op in
    let s =
      Printf.sprintf "%s %s %s"
        (expr ~prec:p a) (binop_name op)
        (expr ~prec:(p + 1) b)
    in
    if p < prec then "(" ^ s ^ ")" else s
  | Unop (Neg, a) -> "-" ^ expr ~prec:10 a
  | Unop (Not, a) -> "!" ^ expr ~prec:10 a
  | Cond (c, a, b) ->
    let s =
      Printf.sprintf "%s ? %s : %s" (expr ~prec:1 c) (expr ~prec:0 a)
        (expr ~prec:0 b)
    in
    if prec > 0 then "(" ^ s ^ ")" else s
  | Call (f, args) ->
    f ^ "(" ^ String.concat ", " (List.map (expr ~prec:0) args) ^ ")"
  | Idx (a, i) -> Printf.sprintf "%s[%s]" (expr ~prec:10 a) (expr ~prec:0 i)
  | With w ->
    let gen =
      match w.gen with
      | Genarray (s, d) ->
        Printf.sprintf "genarray(%s, %s)" (expr ~prec:0 s) (expr ~prec:0 d)
      | Modarray a -> Printf.sprintf "modarray(%s)" (expr ~prec:0 a)
      | Fold (op, n) ->
        Printf.sprintf "fold(%s, %s)" (foldop_name op) (expr ~prec:0 n)
    in
    Printf.sprintf "with { (%s <= %s < %s) : %s; } : %s"
      (expr ~prec:0 w.lb) w.ivar (expr ~prec:0 w.ub)
      (expr ~prec:0 w.body) gen

let expr_to_string e = expr ~prec:0 e

let pad indent = String.make indent ' '

let rec stmt ?(indent = 0) s =
  let p = pad indent in
  match s with
  | Assign (v, e) -> Printf.sprintf "%s%s = %s;" p v (expr_to_string e)
  | Return e -> Printf.sprintf "%sreturn (%s);" p (expr_to_string e)
  | If (c, then_, else_) ->
    let body b =
      String.concat "\n" (List.map (stmt ~indent:(indent + 2)) b)
    in
    if else_ = [] then
      Printf.sprintf "%sif (%s) {\n%s\n%s}" p (expr_to_string c)
        (body then_) p
    else
      Printf.sprintf "%sif (%s) {\n%s\n%s} else {\n%s\n%s}" p
        (expr_to_string c) (body then_) p (body else_) p
  | For (v, init, cond, step, body) ->
    Printf.sprintf "%sfor (%s = %s; %s; %s = %s) {\n%s\n%s}" p v
      (expr_to_string init) (expr_to_string cond) v (expr_to_string step)
      (String.concat "\n" (List.map (stmt ~indent:(indent + 2)) body))
      p

let stmt_to_string ?indent s = stmt ?indent s

let fundef_to_string fd =
  let params =
    String.concat ", "
      (List.map
         (fun pr -> Types.to_string pr.pty ^ " " ^ pr.pname)
         fd.params)
  in
  Printf.sprintf "%s%s %s(%s) {\n%s\n}"
    (if fd.finline then "inline " else "")
    (Types.to_string fd.ret) fd.fname params
    (String.concat "\n" (List.map (stmt ~indent:2) fd.fbody))

let program_to_string prog =
  String.concat "\n\n" (List.map fundef_to_string prog) ^ "\n"
