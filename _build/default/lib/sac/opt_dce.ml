open Ast

module S = Set.Make (String)

let uses e = S.of_list (free_vars e)

(* Backward liveness over a statement list; returns the rewritten
   list and the live-in set. *)
let rec sweep stmts =
  match stmts with
  | [] -> ([], S.empty)
  | s :: rest -> (
    let rest', live_after = sweep rest in
    match s with
    | Assign (v, e) ->
      if S.mem v live_after then
        (Assign (v, e) :: rest', S.union (uses e) (S.remove v live_after))
      else (rest', live_after)
    | Return e -> (Return e :: rest', S.union (uses e) live_after)
    | If (c, a, b) ->
      let a', la = sweep_branch a live_after in
      let b', lb = sweep_branch b live_after in
      ( If (c, a', b') :: rest',
        S.union (uses c) (S.union la lb) )
    | For (v, i, c, st, body) ->
      (* Anything read in the loop may be read on any iteration; keep
         all assignments inside whose targets are read in the loop or
         live after it. *)
      let body_reads =
        List.fold_left
          (fun acc s -> S.union acc (stmt_reads s))
          (S.union (uses c) (uses st))
          body
      in
      let live_in_body = S.union live_after body_reads in
      let body' = keep_live body live_in_body in
      ( For (v, i, c, st, body') :: rest',
        S.union (uses i)
          (S.remove v (S.union live_after body_reads)) ))

and sweep_branch stmts live_after =
  let stmts', live = sweep_with stmts live_after in
  (stmts', live)

and sweep_with stmts live_after =
  (* Like [sweep] but seeded with a live-out set. *)
  match stmts with
  | [] -> ([], live_after)
  | s :: rest -> (
    let rest', live = sweep_with rest live_after in
    match s with
    | Assign (v, e) ->
      if S.mem v live then
        (Assign (v, e) :: rest', S.union (uses e) (S.remove v live))
      else (rest', live)
    | Return e -> (Return e :: rest', S.union (uses e) live)
    | If (c, a, b) ->
      let a', la = sweep_with a live in
      let b', lb = sweep_with b live in
      (If (c, a', b') :: rest', S.union (uses c) (S.union la lb))
    | For (v, i, c, st, body) ->
      let body_reads =
        List.fold_left
          (fun acc s -> S.union acc (stmt_reads s))
          (S.union (uses c) (uses st))
          body
      in
      let body' = keep_live body (S.union live body_reads) in
      ( For (v, i, c, st, body') :: rest',
        S.union (uses i) (S.remove v (S.union live body_reads)) ))

and stmt_reads = function
  | Assign (_, e) | Return e -> uses e
  | If (c, a, b) ->
    List.fold_left
      (fun acc s -> S.union acc (stmt_reads s))
      (uses c) (a @ b)
  | For (_, i, c, st, body) ->
    List.fold_left
      (fun acc s -> S.union acc (stmt_reads s))
      (S.union (uses i) (S.union (uses c) (uses st)))
      body

and keep_live body live =
  List.filter
    (function
      | Assign (v, _) -> S.mem v live
      | Return _ | If _ | For _ -> true)
    body

let run prog =
  List.map
    (fun fd ->
      let body', _ = sweep fd.fbody in
      { fd with fbody = body' })
    prog
