open Ast

(* Is the expression worth sharing?  Variables and literals are not. *)
let worthwhile = function
  | Var _ | Dbl _ | Int _ | Bool _ -> false
  | e -> expr_size e >= 3

(* Replace occurrences of known expressions by their variables,
   biggest first (map_expr is bottom-up, so inner replacements happen
   first, which keeps equal subtrees canonical). *)
let replace_known table e =
  map_expr
    (fun sub ->
      match
        List.find_opt (fun (known, _) -> equal_expr known sub) table
      with
      | Some (_, v) -> Var v
      | None -> sub)
    e

let invalidate table v =
  List.filter
    (fun (known, var) -> var <> v && not (List.mem v (free_vars known)))
    table

let rec walk table = function
  | [] -> []
  | Assign (v, e) :: rest ->
    let e' = replace_known table e in
    let table = invalidate table v in
    let table =
      if worthwhile e' && not (List.mem v (free_vars e')) then
        (e', v) :: table
      else table
    in
    Assign (v, e') :: walk table rest
  | Return e :: rest -> Return (replace_known table e) :: walk table rest
  | If (c, a, b) :: rest ->
    (* Branches start from the current table but do not export it. *)
    If (replace_known table c, walk table a, walk table b)
    :: walk [] rest
  | For (v, i, c, s, b) :: rest ->
    For (v, replace_known table i, c, s, walk [] b) :: walk [] rest

let run prog =
  List.map (fun fd -> { fd with fbody = walk [] fd.fbody }) prog
