(** Function overloading on the shape lattice.

    SaC lets several functions share a name as long as their parameter
    types differ; a call binds to the {e most specific} applicable
    instance — the paper's §2 claims this "far exceeds the
    capabilities of Fortran".  Specificity is pointwise subtyping of
    the parameter lists: a [double\[3\]] instance beats a
    [double\[.\]] instance beats a [double\[+\]] one.

    Resolution is used twice: statically by {!Typecheck} (on inferred
    argument types) and dynamically by {!Eval} (on the exact runtime
    types of the argument values, which are always AKS). *)

val arg_ok : Ast.ty -> Ast.ty -> bool
(** Argument acceptance: subtyping plus int-to-double scalar
    promotion. *)

val candidates : Ast.program -> string -> Ast.fundef list
(** All definitions sharing the name. *)

val is_overloaded : Ast.program -> string -> bool

val resolve :
  Ast.program -> string -> Ast.ty list ->
  (Ast.fundef, string) result
(** [resolve prog name arg_types] picks the unique most-specific
    applicable instance.  [Error] carries a human-readable reason:
    no such function, no applicable instance, or an ambiguity. *)

val same_signature : Ast.fundef -> Ast.fundef -> bool
(** Identical parameter type lists (such duplicates are rejected at
    type checking). *)
