(** Dead-code elimination.

    Assignments whose variable is never read before being shadowed
    (or before the function ends) are deleted; the language is pure,
    so dropping them cannot change behaviour.  Conservative around
    [for] loops: everything read anywhere in a loop body, condition
    or step counts as live throughout. *)

val run : Ast.program -> Ast.program
