(** The standard library of the mini-SaC dialect.

    Whole-array semantics follow SaC: binary arithmetic maps
    elementwise over equal-shaped arrays and broadcasts scalars;
    [drop]/[take] follow the SaC conventions implemented in
    {!Tensor.Slice}.  Each call that touches every element of an array
    counts as one implicit with-loop; {!Eval} charges those to its
    statistics through the [note] callback. *)

val arith :
  note:(int -> unit) ->
  Ast.binop -> Value.t -> Value.t -> Value.t
(** Applies a binary operator.  [note n] is invoked with the element
    count whenever the operation maps over an array.
    @raise Value.Type_error on operand mismatch
    @raise Division_by_zero on integer division by zero. *)

val unary : note:(int -> unit) -> Ast.unop -> Value.t -> Value.t

val call :
  note:(int -> unit) ->
  string -> Value.t list -> Value.t option
(** Builtin function dispatch; [None] when the name is not a builtin.
    Provided: [dim], [shape], [drop], [take], [sum], [maxval],
    [minval], [fabs], [abs], [sqrt], [exp], [log], [min], [max],
    [zeros], [genarray_const] (SaC's [genarray(shape, value)] without
    a with-loop), [reshape], [modarray_set] (functional single-cell
    update), [pow], [reverse] (int vectors and rank-1 arrays).
    @raise Value.Type_error on bad arguments. *)

val names : string list
(** All builtin names (reserved: user functions may not redefine
    them). *)
