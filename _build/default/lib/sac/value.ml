type t =
  | Vdbl of float
  | Vint of int
  | Vbool of bool
  | Vdarr of Tensor.Nd.t
  | Vivec of int array

exception Type_error of string

let to_float = function
  | Vdbl x -> x
  | Vint n -> float_of_int n
  | v ->
    raise
      (Type_error
         ("expected a numeric scalar, got "
          ^ (match v with
             | Vbool _ -> "a boolean"
             | Vdarr _ -> "a double array"
             | Vivec _ -> "an int vector"
             | Vdbl _ | Vint _ -> assert false)))

let to_int = function
  | Vint n -> n
  | _ -> raise (Type_error "expected an integer")

let to_bool = function
  | Vbool b -> b
  | _ -> raise (Type_error "expected a boolean")

let to_tensor = function
  | Vdarr t -> t
  | Vdbl x -> Tensor.Nd.scalar x
  | _ -> raise (Type_error "expected a double array")

let to_ivec = function
  | Vivec v -> v
  | _ -> raise (Type_error "expected an int vector")

let equal a b =
  match (a, b) with
  | Vdbl x, Vdbl y -> x = y
  | Vint x, Vint y -> x = y
  | Vbool x, Vbool y -> x = y
  | Vdarr x, Vdarr y -> Tensor.Nd.equal x y
  | Vivec x, Vivec y -> x = y
  | _ -> false

let pp ppf = function
  | Vdbl x -> Format.fprintf ppf "%g" x
  | Vint n -> Format.fprintf ppf "%d" n
  | Vbool b -> Format.fprintf ppf "%b" b
  | Vdarr t -> Tensor.Nd.pp ppf t
  | Vivec v ->
    Format.fprintf ppf "[%s]"
      (String.concat "," (Array.to_list (Array.map string_of_int v)))

let to_string v = Format.asprintf "%a" pp v
