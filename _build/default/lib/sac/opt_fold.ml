open Ast

let as_int_vec es =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Int n :: rest -> go (n :: acc) rest
    | _ -> None
  in
  go [] es

let fold_arith_int op a b =
  match op with
  | Add -> Some (a + b)
  | Sub -> Some (a - b)
  | Mul -> Some (a * b)
  | Div -> if b = 0 then None else Some (a / b)
  | Mod -> if b = 0 then None else Some (a mod b)
  | _ -> None

let fold_arith_dbl op a b =
  match op with
  | Add -> Some (a +. b)
  | Sub -> Some (a -. b)
  | Mul -> Some (a *. b)
  | Div -> Some (a /. b)
  | Mod -> Some (Float.rem a b)
  | _ -> None

let fold_cmp op a b =
  match op with
  | Eq -> Some (a = b)
  | Ne -> Some (a <> b)
  | Lt -> Some (a < b)
  | Le -> Some (a <= b)
  | Gt -> Some (a > b)
  | Ge -> Some (a >= b)
  | _ -> None

let step e =
  match e with
  | Binop (op, Int a, Int b) -> (
    match fold_arith_int op a b with
    | Some n -> Int n
    | None -> (
      match fold_cmp op (float_of_int a) (float_of_int b) with
      | Some v -> Bool v
      | None -> e))
  | Binop (op, ((Dbl _ | Int _) as a), ((Dbl _ | Int _) as b)) -> (
    (* Mixed or double scalars (the all-int case matched above). *)
    let f = function Dbl x -> x | Int n -> float_of_int n | _ -> 0. in
    match fold_arith_dbl op (f a) (f b) with
    | Some x -> Dbl x
    | None -> (
      match fold_cmp op (f a) (f b) with
      | Some v -> Bool v
      | None -> e))
  | Binop (And, Bool a, Bool b) -> Bool (a && b)
  | Binop (Or, Bool a, Bool b) -> Bool (a || b)
  | Binop (And, Bool false, _) | Binop (And, _, Bool false) -> Bool false
  | Binop (Or, Bool true, _) | Binop (Or, _, Bool true) -> Bool true
  | Binop (And, Bool true, x) | Binop (And, x, Bool true) -> x
  | Binop (Or, Bool false, x) | Binop (Or, x, Bool false) -> x
  | Binop (op, Vec a, Vec b) -> (
    (* Literal int-vector arithmetic, used heavily by bound
       expressions after inlining. *)
    match (as_int_vec a, as_int_vec b) with
    | Some xs, Some ys when List.length xs = List.length ys -> (
      match op with
      | Add | Sub | Mul | Div | Mod -> (
        let zs =
          List.map2 (fun x y -> fold_arith_int op x y) xs ys
        in
        if List.for_all Option.is_some zs then
          Vec (List.map (fun z -> Int (Option.get z)) zs)
        else e)
      | Eq -> Bool (xs = ys)
      | Ne -> Bool (xs <> ys)
      | _ -> e)
    | _ -> e)
  | Binop (op, Vec a, Int k) -> (
    match as_int_vec a with
    | Some xs when (match op with Add | Sub | Mul | Div | Mod -> true | _ -> false) ->
      let zs = List.map (fun x -> fold_arith_int op x k) xs in
      if List.for_all Option.is_some zs then
        Vec (List.map (fun z -> Int (Option.get z)) zs)
      else e
    | _ -> e)
  (* Identities. *)
  | Binop ((Add | Sub), x, Vec zs)
    when zs <> [] && List.for_all (fun z -> z = Int 0) zs ->
    x
  | Binop (Add, Vec zs, x)
    when zs <> [] && List.for_all (fun z -> z = Int 0) zs ->
    x
  (* Only integer-literal identities are type-preserving: [x + 0.0]
     would turn an int expression into ... an int expression, where
     the original promoted to double. *)
  | Binop (Add, x, Int 0) | Binop (Add, Int 0, x) -> x
  | Binop (Sub, x, Int 0) -> x
  | Binop (Mul, x, Int 1) | Binop (Mul, Int 1, x) -> x
  | Binop (Div, x, Int 1) -> x
  | Unop (Neg, Int n) -> Int (-n)
  | Unop (Neg, Dbl x) -> Dbl (-.x)
  | Unop (Neg, Unop (Neg, x)) -> x
  | Unop (Not, Bool b) -> Bool (not b)
  | Unop (Not, Unop (Not, x)) -> x
  | Cond (Bool true, a, _) -> a
  | Cond (Bool false, _, b) -> b
  | Call ("fabs", [ Dbl x ]) -> Dbl (Float.abs x)
  | Call ("sqrt", [ Dbl x ]) when x >= 0. -> Dbl (Float.sqrt x)
  | Call ("dim", [ Vec es ]) when as_int_vec es <> None -> Int 1
  | Call ("shape", [ Vec es ]) when as_int_vec es <> None ->
    Vec [ Int (List.length es) ]
  | Call ("zeros", [ Int n ]) when n >= 0 ->
    Vec (List.init n (fun _ -> Int 0))
  | e -> e

let expr e = map_expr step e

let rec stmt s =
  match s with
  | Assign (v, e) -> Assign (v, expr e)
  | Return e -> Return (expr e)
  | If (c, a, b) -> (
    match expr c with
    | Bool true -> If (Bool true, List.map stmt a, [])
    | Bool false -> If (Bool false, [], List.map stmt b)
    | c' -> If (c', List.map stmt a, List.map stmt b))
  | For (v, init, cond, step_e, body) ->
    For (v, expr init, expr cond, expr step_e, List.map stmt body)

let run prog =
  List.map (fun fd -> { fd with fbody = List.map stmt fd.fbody }) prog
