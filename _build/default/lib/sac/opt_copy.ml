open Ast

(* [table] maps copy variables to their sources. *)
let apply table e = subst table e

let invalidate table v =
  List.filter
    (fun (copy, src) -> copy <> v && src <> Var v)
    table

let rec walk table = function
  | [] -> []
  | Assign (v, e) :: rest -> (
    let e' = apply table e in
    let table = invalidate table v in
    match e' with
    | Var w when w <> v ->
      Assign (v, e') :: walk ((v, Var w) :: table) rest
    | _ -> Assign (v, e') :: walk table rest)
  | Return e :: rest -> Return (apply table e) :: walk table rest
  | If (c, a, b) :: rest ->
    (* Branches inherit the table; conservatively drop it after. *)
    If (apply table c, walk table a, walk table b) :: walk [] rest
  | For (v, i, c, s, body) :: rest ->
    (* Loop bodies re-execute: only copies whose names the loop never
       writes stay valid, which the empty table approximates. *)
    For (v, apply table i, c, s, walk [] body) :: walk [] rest

let run prog =
  List.map (fun fd -> { fd with fbody = walk [] fd.fbody }) prog
