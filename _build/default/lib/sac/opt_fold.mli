(** Constant folding and algebraic simplification.

    Evaluates operator applications whose operands are literals
    (scalar arithmetic, comparisons, literal int-vector arithmetic,
    [Cond] with a literal condition) and applies the safe algebraic
    identities [x + 0], [0 + x], [x - 0], [x * 1], [1 * x], [x / 1]
    (float [x * 0] is {e not} folded: NaN and infinity semantics). *)

val expr : Ast.expr -> Ast.expr
val run : Ast.program -> Ast.program
