(** Copy propagation.

    Assignments of the form [x = y] (variable to variable) are
    propagated into later uses of [x] within the same straight-line
    stretch, until either name is reassigned; DCE then removes the
    copies.  Inlining introduces many of these (parameter bindings),
    so this pass runs right after it in the cycle. *)

val run : Ast.program -> Ast.program
