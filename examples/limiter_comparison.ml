(* Compare the reconstruction menu of the original Fortran code —
   piecewise-constant, TVD2/TVD3 with each slope limiter, WENO3 — on
   two standard shock-tube problems, measuring L1 error against the
   exact Riemann solution.

     dune exec examples/limiter_comparison.exe *)

let l1_error ~nx ~t ~left ~right (st : Euler.State.t) =
  let grid = st.Euler.State.grid in
  let rho = Euler.State.density_profile st in
  let err = ref 0. in
  for i = 0 to nx - 1 do
    let re, _, _ =
      Euler.Exact_riemann.sample ~gamma:Euler.Gas.gamma_air ~left ~right
        ~xi:((Euler.Grid.xc grid i -. 0.5) /. t)
    in
    err := !err +. Float.abs (rho.(i) -. re)
  done;
  !err /. float_of_int nx

let schemes =
  Euler.Recon.Piecewise_constant
  :: Euler.Recon.Weno3
  :: List.concat_map
       (fun (_, lim) -> [ Euler.Recon.Tvd2 lim; Euler.Recon.Tvd3 lim ])
       Euler.Limiter.all

let run_case name setup ~t ~left ~right =
  Printf.printf "\n%s (t = %g), L1 density error vs exact:\n" name t;
  let results =
    List.map
      (fun recon ->
        let prob = setup () in
        let config = { Euler.Solver.default_config with Euler.Solver.recon } in
        let inst = Engine.Registry.create ~config "reference" prob in
        ignore (Engine.Run.run_until inst t);
        ( Euler.Recon.name recon,
          l1_error ~nx:200 ~t ~left ~right (Engine.Backend.state inst) ))
      schemes
  in
  List.iter
    (fun (name, err) -> Printf.printf "  %-16s %.5f\n" name err)
    (List.sort (fun (_, a) (_, b) -> compare a b) results);
  (match (List.assoc_opt "pc" results,
          List.assoc_opt "weno3" results) with
   | Some pc, Some weno when weno < pc ->
     print_endline "  (high-order schemes beat first order, as expected)"
   | _ -> ())

let () =
  run_case "Sod shock tube" (fun () -> Euler.Setup.sod ~nx:200 ()) ~t:0.2
    ~left:(1., 0., 1.) ~right:(0.125, 0., 0.1);
  run_case "Lax problem" (fun () -> Euler.Setup.lax ~nx:200 ()) ~t:0.13
    ~left:(0.445, 0.698, 3.528) ~right:(0.5, 0., 0.571)
