(* The paper's §3.2 flow: two shock waves (Ms = 2.2) exhaust from
   perpendicular channels into a quiescent chamber, diffract over the
   solid walls, and interact — forming circular primary shocks, two
   reflected shocks, a Mach stem between them, and contact surfaces
   that curl into the mushroom structure of the paper's Fig. 3.

     dune exec examples/shock_interaction.exe *)

let () =
  let problem = Euler.Setup.two_channel ~cells_per_h:60 () in
  print_endline problem.Euler.Setup.description;
  let inst =
    Engine.Registry.create ~config:Euler.Solver.default_config "reference"
      problem
  in
  (* Snapshots at successive times show the interaction developing. *)
  List.iter
    (fun t ->
      let m = Engine.Run.run_until inst t in
      let rho = Euler.State.density_field (Engine.Backend.state inst) in
      Printf.printf
        "\n--- t = %.2f (step %d): density in [%.3f, %.3f] ---\n"
        m.Engine.Metrics.sim_time m.Engine.Metrics.steps
        (Tensor.Nd.minval rho) (Tensor.Nd.maxval rho);
      print_string
        (Euler.Field_io.ascii_contour ~width:66 ~height:24
           (Euler.Field_io.schlieren rho)))
    [ 0.15; 0.3; 0.45 ];
  (* Quantitative checks on the final flow. *)
  let st = Engine.Backend.state inst in
  let post =
    Euler.Rankine_hugoniot.post_shock ~gamma:st.Euler.State.gamma ~ms:2.2
      ~rho0:1. ~p0:1.
  in
  let rho = Euler.State.density_field st in
  let n = (Tensor.Nd.shape rho).(0) in
  let diag = Array.init n (fun i -> Tensor.Nd.get rho [| i; i |]) in
  let diag_max = Array.fold_left Float.max 0. diag in
  Printf.printf
    "\nRankine-Hugoniot post-shock density: %.3f; maximum on the \
     diagonal: %.3f\n"
    post.Euler.Rankine_hugoniot.rho diag_max;
  Printf.printf
    "The diagonal maximum exceeding the single-shock value indicates \
     the Mach stem: %b\n"
    (diag_max > post.Euler.Rankine_hugoniot.rho);
  Euler.Field_io.write_pgm ~path:"shock_interaction.pgm" rho;
  print_endline "wrote shock_interaction.pgm (density field)"
