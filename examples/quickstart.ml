(* Quickstart: solve the Sod shock tube and compare against the exact
   Riemann solution.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. Pick a problem.  Setup functions return an initialised state
     plus the boundary conditions it needs. *)
  let problem = Euler.Setup.sod ~nx:400 () in

  (* 2. Instantiate a backend from the engine registry — "reference"
     is the fused solver; "array", "fortran", "fortran-outer" and
     "sacprog" are the paper's other implementations of the same
     numerics.  The config picks WENO3 reconstruction in
     characteristic variables, HLLC fluxes, 3rd-order TVD
     Runge-Kutta. *)
  let inst =
    Engine.Registry.create ~config:Euler.Solver.default_config "reference"
      problem
  in

  (* 3. March to t = 0.2 (the standard comparison time) through the
     shared driver; it returns wall-clock and region metrics. *)
  let metrics = Engine.Run.run_until inst 0.2 in
  Printf.printf "Sod tube: %d steps to t = %.3f (%.2f s)\n"
    metrics.Engine.Metrics.steps metrics.Engine.Metrics.sim_time
    metrics.Engine.Metrics.wall_s;

  (* 4. Compare with the exact solution. *)
  let rho = Euler.State.density_profile (Engine.Backend.state inst) in
  let _, exact = Euler.Setup.sod_exact_profile ~nx:400 ~t:0.2 () in
  let l1 = ref 0. in
  Array.iteri
    (fun i r ->
      let re, _, _ = exact.(i) in
      l1 := !l1 +. Float.abs (r -. re))
    rho;
  Printf.printf "L1 density error vs exact solution: %.5f\n"
    (!l1 /. 400.);

  (* 5. Look at the result. *)
  print_string (Euler.Field_io.ascii_profile ~width:72 ~height:16 rho);
  print_endline
    "(left to right: post-diaphragm state, rarefaction, contact, shock)"
