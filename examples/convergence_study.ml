(* Grid-convergence study: L1 errors against the exact Riemann
   solution for the scheme menu on a sequence of grids, with the
   observed convergence rate between successive refinements.

   Shock-tube solutions are only C0, so even formally high-order
   schemes converge at ~1st order in L1 near discontinuities; the
   point of the table is the large constant-factor separation the
   paper's Fortran code banks on when it selects the 3rd-order
   methods, and the clean ~2nd-order rates on the smooth acoustic
   pulse.

     dune exec examples/convergence_study.exe *)

let sod_error ~recon ~nx =
  let prob = Euler.Setup.sod ~nx () in
  let config = { Euler.Solver.default_config with Euler.Solver.recon } in
  let s = Engine.Registry.create ~config "reference" prob in
  ignore (Engine.Run.run_until s 0.2);
  let rho = Euler.State.density_profile (Engine.Backend.state s) in
  let _, exact = Euler.Setup.sod_exact_profile ~nx ~t:0.2 () in
  let l1 = ref 0. in
  Array.iteri
    (fun i r ->
      let re, _, _ = exact.(i) in
      l1 := !l1 +. Float.abs (r -. re))
    rho;
  !l1 /. float_of_int nx

let pulse_error ~recon ~nx =
  (* Smooth acoustic pulse: self-convergence against a 4x finer run
     sampled down. *)
  let run n =
    let prob = Euler.Setup.acoustic_pulse ~nx:n () in
    let config = { Euler.Solver.default_config with Euler.Solver.recon } in
    let s = Engine.Registry.create ~config "reference" prob in
    ignore (Engine.Run.run_until s 0.1);
    Euler.State.density_profile (Engine.Backend.state s)
  in
  let coarse = run nx and fine = run (4 * nx) in
  let err = ref 0. in
  for i = 0 to nx - 1 do
    let avg =
      ((fine.((4 * i)) +. fine.((4 * i) + 1)) +. (fine.((4 * i) + 2) +. fine.((4 * i) + 3)))
      /. 4.
    in
    err := !err +. Float.abs (coarse.(i) -. avg)
  done;
  !err /. float_of_int nx

let schemes =
  [ Euler.Recon.Piecewise_constant;
    Euler.Recon.Tvd2 Euler.Limiter.Van_leer;
    Euler.Recon.Tvd3 Euler.Limiter.Minmod;
    Euler.Recon.Weno3;
    Euler.Recon.Weno5 ]

let table title error_of grids =
  Printf.printf "\n%s\n" title;
  Printf.printf "%-16s" "scheme";
  List.iter (fun n -> Printf.printf "  n=%-8d" n) grids;
  Printf.printf "   rate\n";
  List.iter
    (fun recon ->
      let errs = List.map (fun nx -> error_of ~recon ~nx) grids in
      Printf.printf "%-16s" (Euler.Recon.name recon);
      List.iter (fun e -> Printf.printf "  %.2e" e) errs;
      (match (errs, List.rev errs) with
       | e0 :: _, elast :: _ when elast > 0. ->
         let doublings =
           Float.log
             (float_of_int (List.nth grids (List.length grids - 1))
              /. float_of_int (List.hd grids))
           /. Float.log 2.
         in
         Printf.printf "   %.2f" (Float.log (e0 /. elast) /. Float.log 2. /. doublings)
       | _ -> ());
      print_newline ())
    schemes

let () =
  table "Sod shock tube, L1(rho) vs exact (t = 0.2):" sod_error
    [ 50; 100; 200; 400 ];
  table "Smooth acoustic pulse, L1(rho) self-convergence (t = 0.1):"
    pulse_error [ 25; 50; 100 ];
  print_endline
    "\n(rate = observed L1 order; shocks cap it near 1, the smooth\n\
     pulse shows the schemes' design orders up to limiter effects)"
