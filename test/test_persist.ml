(* Tests for the persistence layer: CRC-32 known answers, bitwise
   snapshot round trips, atomic-write crash safety, corruption
   injection (every damaged byte pattern must raise Corrupt with a
   diagnostic, never decode wrong), checkpoint-directory retention and
   crash fallback, and the golden store. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "persist-test-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Persist.Checkpoint.mkdir_p dir;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      try rm dir with Sys_error _ -> ())
    (fun () -> f dir)

let sample_snapshot () =
  { Persist.Snapshot.descriptor =
      [ ("backend", "reference");
        ("gamma", Persist.Snapshot.d_float 1.4);
        ("nx", Persist.Snapshot.d_int 4) ];
    steps = 17;
    sim_time = 0.1 +. 0.2;  (* not exactly representable: bitwise test *)
    fields =
      [ ("rho", Tensor.Nd.init_flat [| 8 |] (fun i -> 1. +. (0.1 *. float_of_int i)));
        ("E", Tensor.Nd.init [| 2; 4 |] (fun iv -> float_of_int ((10 * iv.(0)) + iv.(1)))) ] }

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)
(* ------------------------------------------------------------------ *)

let test_crc_known_answer () =
  Alcotest.(check int32) "check value" 0xCBF43926l
    (Persist.Crc32.of_string "123456789");
  Alcotest.(check int32) "empty" 0l (Persist.Crc32.of_string "")

let test_crc_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let k = 13 in
  let a = String.sub s 0 k and b = String.sub s k (String.length s - k) in
  Alcotest.(check int32) "composes"
    (Persist.Crc32.of_string s)
    (Persist.Crc32.update
       (Persist.Crc32.update 0l a ~pos:0 ~len:(String.length a))
       b ~pos:0 ~len:(String.length b));
  Alcotest.check_raises "bounds checked"
    (Invalid_argument "Crc32.update: range out of bounds") (fun () ->
      ignore (Persist.Crc32.update 0l "abc" ~pos:1 ~len:3))

(* ------------------------------------------------------------------ *)
(* Snapshot encode/decode                                              *)
(* ------------------------------------------------------------------ *)

let same_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_snapshot_equal (a : Persist.Snapshot.t) (b : Persist.Snapshot.t) =
  Alcotest.(check (list (pair string string)))
    "descriptor" a.descriptor b.descriptor;
  check_int "steps" a.steps b.steps;
  check_bool "sim_time bitwise" true (same_bits a.sim_time b.sim_time);
  check_int "field count" (List.length a.fields) (List.length b.fields);
  List.iter2
    (fun (na, ta) (nb, tb) ->
      check_string "field name" na nb;
      Alcotest.(check (array int)) (na ^ " shape") (Tensor.Nd.shape ta)
        (Tensor.Nd.shape tb);
      let da = ta.Tensor.Nd.data and db = tb.Tensor.Nd.data in
      Array.iteri
        (fun i v -> check_bool (na ^ " data bitwise") true (same_bits v db.(i)))
        da)
    a.fields b.fields

let test_roundtrip () =
  let s = sample_snapshot () in
  check_snapshot_equal s (Persist.Snapshot.decode (Persist.Snapshot.encode s))

let test_roundtrip_file () =
  with_tmpdir (fun dir ->
      let s = sample_snapshot () in
      let path = Filename.concat dir "a.swck" in
      let size = Persist.Snapshot.write ~path s in
      check_int "size is the encoding" size
        (String.length (Persist.Snapshot.encode s));
      check_bool "no tmp left" true
        (not (Sys.file_exists (Persist.Atomic_write.temp_path path)));
      check_snapshot_equal s (Persist.Snapshot.read ~path))

let test_descriptor_helpers () =
  let s = sample_snapshot () in
  check_bool "gamma bitwise through %h" true
    (same_bits 1.4 (Persist.Snapshot.get_float s "gamma"));
  check_int "nx" 4 (Persist.Snapshot.get_int s "nx");
  check_bool "absent is None" true
    (Option.is_none (Persist.Snapshot.get s "nope"));
  check_bool "get_exn raises Corrupt" true
    (try ignore (Persist.Snapshot.get_exn s "nope"); false
     with Persist.Snapshot.Corrupt _ -> true);
  check_bool "field raises Corrupt" true
    (try ignore (Persist.Snapshot.field s "nope"); false
     with Persist.Snapshot.Corrupt _ -> true);
  (* 8 rho + 8 E elements, 8 bytes each *)
  check_int "payload bytes" (16 * 8) (Persist.Snapshot.payload_bytes s)

let test_encode_rejects_malformed () =
  let reject name s =
    check_bool name true
      (try ignore (Persist.Snapshot.encode s); false
       with Invalid_argument _ -> true)
  in
  let ok = sample_snapshot () in
  reject "space in key"
    { ok with Persist.Snapshot.descriptor = [ ("a b", "c") ] };
  reject "newline in value"
    { ok with Persist.Snapshot.descriptor = [ ("a", "b\nc") ] };
  reject "duplicate field"
    { ok with
      Persist.Snapshot.fields =
        [ ("x", Tensor.Nd.init_flat [| 1 |] float_of_int);
          ("x", Tensor.Nd.init_flat [| 1 |] float_of_int) ] };
  reject "negative steps" { ok with Persist.Snapshot.steps = -1 }

(* ------------------------------------------------------------------ *)
(* Corruption injection                                                *)
(* ------------------------------------------------------------------ *)

let expect_corrupt name bytes =
  match Persist.Snapshot.decode bytes with
  | _ -> Alcotest.failf "%s: decoded instead of raising Corrupt" name
  | exception Persist.Snapshot.Corrupt msg ->
    check_bool (name ^ " has a diagnostic") true (String.length msg > 0)

let test_corruption_injection () =
  let good = Persist.Snapshot.encode (sample_snapshot ()) in
  let n = String.length good in
  expect_corrupt "empty" "";
  expect_corrupt "truncated header" (String.sub good 0 10);
  expect_corrupt "truncated body" (String.sub good 0 (n / 2));
  expect_corrupt "truncated by one byte" (String.sub good 0 (n - 1));
  expect_corrupt "trailing garbage" (good ^ "x");
  let flip i =
    let b = Bytes.of_string good in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    Bytes.to_string b
  in
  expect_corrupt "bad magic" (flip 0);
  expect_corrupt "bad version" (flip 8);
  expect_corrupt "bad endian tag" (flip 12);
  (* Flip one bit at several positions across the body: the section or
     whole-file CRC must catch each. *)
  List.iter
    (fun i -> expect_corrupt (Printf.sprintf "bit flip @%d" i) (flip i))
    [ 24; n / 3; n / 2; (2 * n) / 3; n - 2 ]

let test_corrupt_message_names_the_check () =
  let good = Persist.Snapshot.encode (sample_snapshot ()) in
  let msg_of bytes =
    try ignore (Persist.Snapshot.decode bytes); ""
    with Persist.Snapshot.Corrupt m -> m
  in
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s
                   && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "magic named" true
    (contains ~sub:"magic" (msg_of (String.make 64 'X')));
  let b = Bytes.of_string good in
  Bytes.set b (String.length good - 1)
    (Char.chr (Char.code (Bytes.get b (String.length good - 1)) lxor 1));
  check_bool "checksum named" true
    (contains ~sub:"checksum" (msg_of (Bytes.to_string b)))

(* ------------------------------------------------------------------ *)
(* Atomic writes                                                       *)
(* ------------------------------------------------------------------ *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_atomic_write_crash_safety () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "out.txt" in
      Persist.Atomic_write.write_string path "version one";
      (* A writer that dies mid-file must leave the old version and no
         scratch file. *)
      check_bool "failing writer raises" true
        (try
           Persist.Atomic_write.to_file path (fun oc ->
               output_string oc "partial";
               failwith "disk full");
           false
         with Failure _ -> true);
      check_string "previous content intact" "version one" (read_file path);
      check_bool "scratch removed" true
        (not (Sys.file_exists (Persist.Atomic_write.temp_path path)));
      Persist.Atomic_write.write_string path "version two";
      check_string "replaced atomically" "version two" (read_file path))

(* ------------------------------------------------------------------ *)
(* Checkpoint directories                                              *)
(* ------------------------------------------------------------------ *)

let snap_at steps =
  { (sample_snapshot ()) with
    Persist.Snapshot.steps;
    sim_time = float_of_int steps *. 1e-3 }

let test_checkpoint_naming () =
  check_string "file name" "ckpt-000000123.swck"
    (Persist.Checkpoint.file_name ~steps:123);
  Alcotest.(check (option int)) "parses back" (Some 123)
    (Persist.Checkpoint.steps_of_file "ckpt-000000123.swck");
  Alcotest.(check (option int)) "tmp ignored" None
    (Persist.Checkpoint.steps_of_file "ckpt-000000123.swck.tmp");
  Alcotest.(check (option int)) "foreign ignored" None
    (Persist.Checkpoint.steps_of_file "notes.txt")

let test_checkpoint_save_list_retain () =
  with_tmpdir (fun dir ->
      List.iter
        (fun s -> ignore (Persist.Checkpoint.save ~dir (snap_at s)))
        [ 5; 10; 15; 20 ];
      Alcotest.(check (list int)) "listed ascending" [ 5; 10; 15; 20 ]
        (List.map fst (Persist.Checkpoint.list dir));
      Persist.Checkpoint.retain ~dir ~keep:2;
      Alcotest.(check (list int)) "oldest deleted" [ 15; 20 ]
        (List.map fst (Persist.Checkpoint.list dir));
      check_bool "keep < 1 rejected" true
        (try Persist.Checkpoint.retain ~dir ~keep:0; false
         with Invalid_argument _ -> true);
      match Persist.Checkpoint.latest_valid dir with
      | Some (_, s) -> check_int "latest is newest" 20 s.Persist.Snapshot.steps
      | None -> Alcotest.fail "expected a valid checkpoint")

let test_latest_valid_skips_corrupt () =
  with_tmpdir (fun dir ->
      List.iter
        (fun s -> ignore (Persist.Checkpoint.save ~dir (snap_at s)))
        [ 10; 20 ];
      (* Simulate a torn write of the newest checkpoint. *)
      let newest = Filename.concat dir (Persist.Checkpoint.file_name ~steps:20) in
      let bytes = read_file newest in
      Out_channel.with_open_bin newest (fun oc ->
          Out_channel.output_string oc
            (String.sub bytes 0 (String.length bytes / 2)));
      (match Persist.Checkpoint.latest_valid dir with
       | Some (path, s) ->
         check_int "fell back to previous" 10 s.Persist.Snapshot.steps;
         check_string "path is the intact file"
           (Filename.concat dir (Persist.Checkpoint.file_name ~steps:10))
           path
       | None -> Alcotest.fail "expected fallback to the intact checkpoint");
      check_bool "corrupt file left for forensics" true
        (Sys.file_exists newest);
      (* Direct read of the torn file must raise, not resume wrong. *)
      check_bool "direct read raises Corrupt" true
        (try ignore (Persist.Snapshot.read ~path:newest); false
         with Persist.Snapshot.Corrupt _ -> true))

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  nl = 0
  || (let found = ref false in
      for i = 0 to hl - nl do
        if (not !found) && String.sub hay i nl = needle then found := true
      done;
      !found)

(* The crashed-writer debris matrix: a zero-byte file (open succeeded,
   nothing flushed) and a truncated tail on top of an intact older
   snapshot.  latest_valid must fall back silently-but-audibly: the
   resume succeeds AND every rejected candidate is reported through
   on_skip with a reason. *)
let test_latest_valid_crashed_writer_debris () =
  with_tmpdir (fun dir ->
      ignore (Persist.Checkpoint.save ~dir (snap_at 10));
      ignore (Persist.Checkpoint.save ~dir (snap_at 20));
      let trunc = Filename.concat dir (Persist.Checkpoint.file_name ~steps:20) in
      let bytes = read_file trunc in
      Out_channel.with_open_bin trunc (fun oc ->
          Out_channel.output_string oc (String.sub bytes 0 12));
      let zero = Filename.concat dir (Persist.Checkpoint.file_name ~steps:30) in
      Out_channel.with_open_bin zero (fun _ -> ());
      let skips = ref [] in
      (match
         Persist.Checkpoint.latest_valid
           ~on_skip:(fun path reason -> skips := (path, reason) :: !skips)
           dir
       with
       | Some (path, s) ->
         check_int "fell back to the intact snapshot" 10
           s.Persist.Snapshot.steps;
         check_string "path is the intact file"
           (Filename.concat dir (Persist.Checkpoint.file_name ~steps:10))
           path
       | None -> Alcotest.fail "expected fallback past the debris");
      let skips = List.rev !skips in
      check_int "both debris files reported" 2 (List.length skips);
      check_string "newest (zero-byte) rejected first" zero
        (fst (List.nth skips 0));
      check_string "then the truncated one" trunc (fst (List.nth skips 1));
      List.iter
        (fun (_, reason) ->
          check_bool "skip carries a reason" true (String.length reason > 0))
        skips;
      (* examine agrees with latest_valid, file by file. *)
      let verdicts = Persist.Checkpoint.examine dir in
      check_int "examine covers all three" 3 (List.length verdicts);
      let verdict_of p = List.assoc p verdicts in
      check_bool "intact verdict" true
        (match
           verdict_of (Filename.concat dir (Persist.Checkpoint.file_name ~steps:10))
         with
         | Persist.Checkpoint.Intact s -> s.Persist.Snapshot.steps = 10
         | Persist.Checkpoint.Rejected _ -> false);
      List.iter
        (fun p ->
          check_bool "debris verdict" true
            (match verdict_of p with
             | Persist.Checkpoint.Rejected r -> String.length r > 0
             | Persist.Checkpoint.Intact _ -> false))
        [ trunc; zero ];
      (* The human report mentions every file and its fate. *)
      let report = Persist.Checkpoint.report dir in
      List.iter
        (fun needle ->
          check_bool ("report mentions " ^ needle) true
            (contains ~needle report))
        [ Filename.basename trunc; Filename.basename zero; "intact";
          "rejected" ])

let test_report_empty_and_foreign () =
  with_tmpdir (fun dir ->
      check_bool "empty dir reported" true
        (contains ~needle:"empty" (Persist.Checkpoint.report dir));
      Out_channel.with_open_bin (Filename.concat dir "notes.txt") (fun oc ->
          Out_channel.output_string oc "hello");
      Out_channel.with_open_bin
        (Filename.concat dir "ckpt-000000005.swck.tmp") (fun _ -> ());
      let r = Persist.Checkpoint.report dir in
      List.iter
        (fun needle ->
          check_bool ("report mentions " ^ needle) true
            (contains ~needle r))
        [ "notes.txt"; "not a checkpoint"; "scratch" ])

let test_empty_dir_and_missing_dir () =
  with_tmpdir (fun dir ->
      check_bool "empty dir" true (Persist.Checkpoint.list dir = []);
      check_bool "empty dir latest" true
        (Option.is_none (Persist.Checkpoint.latest_valid dir)));
  let missing = "/nonexistent/persist-test" in
  check_bool "missing dir lists empty" true
    (Persist.Checkpoint.list missing = []);
  check_bool "missing dir latest" true
    (Option.is_none (Persist.Checkpoint.latest_valid missing))

(* ------------------------------------------------------------------ *)
(* Golden store                                                        *)
(* ------------------------------------------------------------------ *)

let test_golden_store () =
  with_tmpdir (fun root ->
      check_bool "no keys yet" true (Persist.Golden.keys ~root = []);
      check_bool "absent is None" true
        (Option.is_none (Persist.Golden.load ~root ~key:"nope"));
      let s = sample_snapshot () in
      let p = Persist.Golden.bless ~root ~key:"ref--pc--64" s in
      check_string "path shape"
        (Filename.concat root "ref--pc--64.swck") p;
      (match Persist.Golden.load ~root ~key:"ref--pc--64" with
       | Some got -> check_snapshot_equal s got
       | None -> Alcotest.fail "blessed snapshot not found");
      Alcotest.(check (list string)) "keys" [ "ref--pc--64" ]
        (Persist.Golden.keys ~root);
      (* A damaged golden must fail loudly, not pass silently. *)
      let bytes = read_file p in
      Out_channel.with_open_bin p (fun oc ->
          Out_channel.output_string oc (String.sub bytes 0 40));
      check_bool "corrupt golden raises" true
        (try ignore (Persist.Golden.load ~root ~key:"ref--pc--64"); false
         with Persist.Snapshot.Corrupt _ -> true);
      check_bool "key with slash rejected" true
        (try ignore (Persist.Golden.path ~root ~key:"a/b"); false
         with Invalid_argument _ -> true))

let () =
  Alcotest.run "persist"
    [ ( "crc32",
        [ Alcotest.test_case "known answer" `Quick test_crc_known_answer;
          Alcotest.test_case "incremental" `Quick test_crc_incremental ] );
      ( "snapshot",
        [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_roundtrip_file;
          Alcotest.test_case "descriptor helpers" `Quick
            test_descriptor_helpers;
          Alcotest.test_case "encode rejects malformed" `Quick
            test_encode_rejects_malformed ] );
      ( "corruption",
        [ Alcotest.test_case "injection matrix" `Quick
            test_corruption_injection;
          Alcotest.test_case "diagnostics name the check" `Quick
            test_corrupt_message_names_the_check ] );
      ( "atomic",
        [ Alcotest.test_case "crash safety" `Quick
            test_atomic_write_crash_safety ] );
      ( "checkpoint",
        [ Alcotest.test_case "naming" `Quick test_checkpoint_naming;
          Alcotest.test_case "save/list/retain" `Quick
            test_checkpoint_save_list_retain;
          Alcotest.test_case "latest_valid skips corrupt" `Quick
            test_latest_valid_skips_corrupt;
          Alcotest.test_case "crashed-writer debris (zero-byte, truncated)"
            `Quick test_latest_valid_crashed_writer_debris;
          Alcotest.test_case "report covers empty and foreign files" `Quick
            test_report_empty_and_foreign;
          Alcotest.test_case "empty and missing dirs" `Quick
            test_empty_dir_and_missing_dir ] );
      ( "golden",
        [ Alcotest.test_case "store" `Quick test_golden_store ] ) ]
