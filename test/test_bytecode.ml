(* Tests for the bytecode stage: golden disassembly listings pinning
   the [Bytecode.pp] format (blessed from files, never hand-edited), a
   differential suite running every shipped program through the
   tree-walking interpreter and the VM (kernels on, kernels off,
   1-lane, N-lane) asserting bitwise-identical values and statistics,
   adversarial fold bodies pinning the parallel fold-kernel path, a
   superinstruction on/off parity check, and error-message parity
   between the engines. *)

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let value_testable = Alcotest.testable Sac.Value.pp Sac.Value.equal

let darr xs = Sac.Value.Vdarr (Tensor.Nd.of_list1 xs)
let vd x = Sac.Value.Vdbl x
let vi n = Sac.Value.Vint n

let compile ?(options = Sac.Pipeline.default_options) src =
  Sac.Pipeline.compile_bytecode ~options src

(* ------------------------------------------------------------------ *)
(* Golden disassembly listings                                         *)
(* ------------------------------------------------------------------ *)

(* The sources and their blessed -O0 listings live under
   test/golden/bytecode/ as NAME.sac / NAME.lst pairs.  When a change
   is supposed to move the encoding (a new opcode, a peephole pass),
   regenerate the listings with scripts/bless_bytecode.sh and commit
   the .lst diff with the change — never edit a .lst by hand.
   Compiled at -O0 so the listing pins the translation (including
   superinstruction fusion, which stays on at -O0), not the
   optimiser. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_src name = read_file ("golden/bytecode/" ^ name ^ ".sac")
let golden_listing name = read_file ("golden/bytecode/" ^ name ^ ".lst")

(* scalar: constants, loads/stores, jumps (for/if), static and builtin
   calls, llbin/lcbin superinstructions with remapped jump targets.
   with-loops: genarray and fold descriptors, capture lists.
   overloads: dynamic dispatch and short-circuit jumps (whose targets
   block fusion). *)
let golden_names = [ "scalar"; "with-loops"; "overloads" ]

let test_golden_listings () =
  List.iter
    (fun name ->
      let _, bc, _ = compile ~options:Sac.Pipeline.o0 (golden_src name) in
      check_string
        (name ^ " (re-bless with scripts/bless_bytecode.sh if the \
                 encoding intentionally moved)")
        (golden_listing name)
        (Sac.Bytecode.to_string bc))
    golden_names

let test_report_summary () =
  let _, bc, report = compile Sacprog.Programs.euler_1d in
  let s =
    match report.Sac.Pipeline.bytecode with
    | Some s -> s
    | None -> Alcotest.fail "compile_bytecode must fill report.bytecode"
  in
  check_int "n_funcs" (Array.length bc.Sac.Bytecode.funcs) s.Sac.Bytecode.n_funcs;
  check_int "n_withs" (Array.length bc.Sac.Bytecode.withs) s.Sac.Bytecode.n_withs;
  check_int "n_consts" (Array.length bc.Sac.Bytecode.consts)
    s.Sac.Bytecode.n_consts;
  Alcotest.(check bool) "has instructions" true (s.Sac.Bytecode.n_instrs > 0)

(* The peephole must actually shrink the stream it claims to fuse. *)
let test_fusion_shrinks () =
  let instrs options src =
    let _, _, report = compile ~options src in
    match report.Sac.Pipeline.bytecode with
    | Some s -> s.Sac.Bytecode.n_instrs
    | None -> Alcotest.fail "no bytecode summary"
  in
  let src = golden_src "scalar" in
  let fused = instrs Sac.Pipeline.o0 src in
  let flat =
    instrs
      { Sac.Pipeline.o0 with Sac.Pipeline.do_superinstructions = false }
      src
  in
  Alcotest.(check bool)
    (Printf.sprintf "fused (%d) < unfused (%d)" fused flat)
    true (fused < flat)

(* ------------------------------------------------------------------ *)
(* Differential suite: interpreter vs VM                               *)
(* ------------------------------------------------------------------ *)

(* A case is a program plus a call sequence; [Prev] feeds the previous
   call's result through (solver programs build their state first). *)
type arg = V of Sac.Value.t | Prev

let run_seq runner seq =
  let last =
    List.fold_left
      (fun prev (name, args) ->
        let args =
          List.map (function V v -> v | Prev -> Option.get prev) args
        in
        Some (runner name args))
      None seq
  in
  Option.get last

(* Vm_lane1 pins the degenerate pool: a 1-lane SPMD executor with a
   tiny threshold takes the parallel dispatch path but reduces a
   single lane slot.  Vm_parallel is the real N-lane path. *)
type engine = Interp | Vm | Vm_generic | Vm_lane1 | Vm_parallel

let engine_label = function
  | Interp -> "interp"
  | Vm -> "vm"
  | Vm_generic -> "vm-generic"
  | Vm_lane1 -> "vm-1lane"
  | Vm_parallel -> "vm-parallel"

let run_engine engine prog bc seq =
  match engine with
  | Interp ->
    let ctx = Sac.Eval.make_ctx prog in
    let r = run_seq (Sac.Eval.run_fun ctx) seq in
    (r, Sac.Eval.stats ctx)
  | Vm ->
    let ctx = Sac.Vm.make_ctx bc in
    let r = run_seq (Sac.Vm.run_fun ctx) seq in
    (r, Sac.Vm.stats ctx)
  | Vm_generic ->
    let ctx = Sac.Vm.make_ctx ~kernels:false bc in
    let r = run_seq (Sac.Vm.run_fun ctx) seq in
    (r, Sac.Vm.stats ctx)
  | Vm_lane1 ->
    let exec = Parallel.Exec.spmd ~lanes:1 in
    let ctx = Sac.Vm.make_ctx ~exec ~parallel_threshold:4 bc in
    let r = run_seq (Sac.Vm.run_fun ctx) seq in
    let s = Sac.Vm.stats ctx in
    Parallel.Exec.shutdown exec;
    (r, s)
  | Vm_parallel ->
    let exec = Parallel.Exec.spmd ~lanes:4 in
    let ctx = Sac.Vm.make_ctx ~exec ~parallel_threshold:4 bc in
    let r = run_seq (Sac.Vm.run_fun ctx) seq in
    let s = Sac.Vm.stats ctx in
    Parallel.Exec.shutdown exec;
    (r, s)

let vm_engines = [ Vm; Vm_generic; Vm_lane1; Vm_parallel ]

let tbl_sorted t =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [])

let check_stats label (a : Sac.Eval.stats) (b : Sac.Eval.stats) =
  check_int (label ^ ": with_loops") a.Sac.Eval.with_loops
    b.Sac.Eval.with_loops;
  check_int (label ^ ": elements") a.Sac.Eval.elements b.Sac.Eval.elements;
  check_int (label ^ ": calls") a.Sac.Eval.calls b.Sac.Eval.calls;
  Alcotest.(check (list (pair string int)))
    (label ^ ": fun_calls")
    (tbl_sorted a.Sac.Eval.fun_calls)
    (tbl_sorted b.Sac.Eval.fun_calls);
  Alcotest.(check (list (pair string int)))
    (label ^ ": with_execs")
    (tbl_sorted a.Sac.Eval.with_execs)
    (tbl_sorted b.Sac.Eval.with_execs);
  Alcotest.(check (list (pair string int)))
    (label ^ ": fold_execs")
    (tbl_sorted a.Sac.Eval.fold_execs)
    (tbl_sorted b.Sac.Eval.fold_execs)

(* Every shipped program, with entry calls small enough for a quick
   run, plus targeted sources exercising semantics the solvers don't:
   overload dispatch, integer folds, bool/vector kernels, fallback
   bodies the specialiser rejects. *)
let differential_cases =
  [ ( "dfdx",
      Sacprog.Programs.df_dx_no_boundary,
      [ ("dfDxNoBoundary", [ V (darr [ 1.; 2.; 4.; 8. ]); V (vd 0.5) ]) ] );
    ( "getdt",
      Sacprog.Programs.get_dt,
      [ ( "getDt",
          [ V (darr [ 0.5; -1. ]); V (darr [ 1.; 1. ]);
            V (darr [ 1.; 0.5 ]); V (vd 1.4); V (vd 0.01); V (vd 0.5) ] ) ] );
    ( "euler1d",
      Sacprog.Programs.euler_1d,
      [ ("sod_init", [ V (vi 32) ]);
        ( "run",
          [ Prev; V (vi 5); V (vd 1.4); V (vd (1. /. 32.)); V (vd 0.5) ] ) ] );
    ( "euler2d",
      Sacprog.Programs.euler_2d,
      [ ("quadrant_init", [ V (vi 8) ]);
        ( "run2",
          [ Prev; V (vi 2); V (vd 1.4); V (vd 0.125); V (vd 0.125);
            V (vd 0.5) ] ) ] );
    ( "poisson1d",
      Sacprog.Programs.poisson_1d,
      [ ("poisson1d", [ V (darr [ 1.; 2.; 3.; 4.; 5. ]); V (vd 0.1) ]) ] );
    ( "overloads",
      golden_src "overloads",
      [ ("h", [ V (Sac.Value.Vbool true); V (Sac.Value.Vbool false);
                V (vd 2.0) ]) ] );
    ( "int-fold",
      "double f(int n) { return (1.0 * (with { ([0] <= iv < [n]) : iv[0] \
       * iv[0]; } : fold(+, 0))); }",
      [ ("f", [ V (vi 100) ]) ] );
    ( "mixed-cond-kernel",
      (* int-vs-double conditional arms: the specialiser must bail to
         the generic body, which still has to match the interpreter. *)
      "double[.] f(int n) { return (with { ([0] <= iv < [n]) : 1.0 * \
       (iv[0] > 2 ? 1 : 0.5); } : genarray([n], 0.0)); }",
      [ ("f", [ V (vi 9) ]) ] );
    ( "nested-with",
      "double[.,.] f(int n) { return (with { ([0,0] <= iv < [n,n]) : \
       (with { ([0] <= jv < [n]) : 1.0 * (iv[0] + jv[0]); } : fold(+, \
       0.0)); } : genarray([n,n], 0.0)); }",
      [ ("f", [ V (vi 7) ]) ] );
    ( "modarray",
      "double[.] f(double[.] v) { return (with { ([1] <= iv < [3]) : \
       v[iv] * 10.0; } : modarray(v)); }",
      [ ("f", [ V (darr [ 1.; 2.; 3.; 4. ]) ]) ] );
    ( "builtin-heavy",
      "double f(double[.] v) { return (maxval(fabs(v)) + minval(v) + \
       sum(sqrt(fabs(v)))); }",
      [ ("f", [ V (darr [ -4.; 9.; -16. ]) ]) ] ) ]

(* Adversarial fold bodies, sized past the test threshold (4) and the
   production default (1024) so the parallel engines genuinely
   dispatch them.  Sum stays lane-ordered-sequential (non-associative
   float addition), max/min take the parallel kernel path, the empty
   range must yield the init everywhere, the neutral-only case checks
   the per-lane init seeding is absorbed by idempotence, and rank-2
   exercises the odometer/column path under lane partitioning. *)
let fold_cases =
  [ ( "fold-nonassoc-sum",
      "double f(int n) { return (with { ([0] <= iv < [n]) : 1.0 / (1.0 * \
       iv[0] + 1.0); } : fold(+, 0.0)); }",
      [ ("f", [ V (vi 3000) ]) ] );
    ( "fold-max-parallel",
      "double f(int n) { return (with { ([0] <= iv < [n]) : fabs(1.0 * \
       iv[0] - 1999.5); } : fold(max, 0.0)); }",
      [ ("f", [ V (vi 4000) ]) ] );
    ( "fold-min-parallel",
      "double f(int n) { return (with { ([0] <= iv < [n]) : fabs(1.0 * \
       iv[0] - 1999.5); } : fold(min, 1000000.0)); }",
      [ ("f", [ V (vi 4000) ]) ] );
    ( "fold-empty-range",
      "double f(int n) { return (with { ([n] <= iv < [n]) : 1.0 * iv[0]; \
       } : fold(max, 3.5)); }",
      [ ("f", [ V (vi 7) ]) ] );
    ( "fold-neutral-only",
      (* init dominates every element: the parallel reduction seeds
         every lane slot with init, which max absorbs. *)
      "double f(int n) { return (with { ([0] <= iv < [n]) : 0.0 - \
       1000000000.0; } : fold(max, 1000000000.0)); }",
      [ ("f", [ V (vi 64) ]) ] );
    ( "fold-rank2",
      "double f(int n) { return (with { ([0,0] <= iv < [n,n]) : fabs(1.0 \
       * (iv[0] * 7 - iv[1] * 3)); } : fold(max, 0.0)); }",
      [ ("f", [ V (vi 80) ]) ] );
    ( "fold-generic-body",
      (* a user call the specialiser cannot thread at -O0: the generic
         body must still agree (at default options inlining usually
         recovers the kernel — both must match the interpreter). *)
      "double g(double x) { return (x * 2.0); } double f(int n) { return \
       (with { ([0] <= iv < [n]) : g(1.0 * iv[0]); } : fold(max, 0.0)); }",
      [ ("f", [ V (vi 2000) ]) ] ) ]

let all_cases = differential_cases @ fold_cases

let test_differential () =
  List.iter
    (fun (label, src, seq) ->
      let prog, bc, _ = compile src in
      let r0, s0 = run_engine Interp prog bc seq in
      List.iter
        (fun e ->
          let r, s = run_engine e prog bc seq in
          let l = label ^ "/" ^ engine_label e in
          Alcotest.check value_testable l r0 r;
          check_stats l s0 s)
        vm_engines)
    all_cases

(* -O0 bytecode must agree too: the optimiser rewrites many forms the
   lowering otherwise sees (no folding, no unrolling). *)
let test_differential_o0 () =
  List.iter
    (fun (label, src, seq) ->
      let prog, bc, _ = compile ~options:Sac.Pipeline.o0 src in
      let r0, _ = run_engine Interp prog bc seq in
      let r1, _ = run_engine Vm prog bc seq in
      Alcotest.check value_testable (label ^ "/O0") r0 r1)
    all_cases

(* Superinstructions are an encoding detail: values AND the observable
   statistics (per-function call counts, with-loop and fold execution
   counts) must be identical with fusion on and off, and both must
   match the interpreter. *)
let test_superinstructions_transparent () =
  let off =
    { Sac.Pipeline.default_options with
      Sac.Pipeline.do_superinstructions = false }
  in
  List.iter
    (fun (label, src, seq) ->
      let prog, bc_on, _ = compile src in
      let _, bc_off, _ = compile ~options:off src in
      let r0, s0 = run_engine Interp prog bc_on seq in
      let r_on, s_on = run_engine Vm prog bc_on seq in
      let r_off, s_off = run_engine Vm prog bc_off seq in
      Alcotest.check value_testable (label ^ "/fused") r0 r_on;
      Alcotest.check value_testable (label ^ "/unfused") r0 r_off;
      check_stats (label ^ "/fused") s0 s_on;
      check_stats (label ^ "/unfused") s0 s_off)
    all_cases

(* Every fold in euler_1d (the CFL reduction) is specialisable, so the
   VM must take the fold-kernel path for each execution. *)
let test_fold_kernel_counter () =
  let _, bc, _ = compile Sacprog.Programs.euler_1d in
  let ctx = Sac.Vm.make_ctx bc in
  let _ =
    run_seq (Sac.Vm.run_fun ctx)
      [ ("sod_init", [ V (vi 32) ]);
        ( "run",
          [ Prev; V (vi 5); V (vd 1.4); V (vd (1. /. 32.)); V (vd 0.5) ] ) ]
  in
  let s = Sac.Vm.stats ctx in
  let folds =
    Hashtbl.fold (fun _ n acc -> acc + n) s.Sac.Eval.fold_execs 0
  in
  Alcotest.(check bool) "folds executed" true (folds > 0);
  check_int "every fold took the kernel path" folds
    (Sac.Vm.fold_kernel_execs ctx)

(* ------------------------------------------------------------------ *)
(* Error-message parity                                                *)
(* ------------------------------------------------------------------ *)

let outcome_of f =
  try
    ignore (f ());
    "ok"
  with
  | Sac.Eval.Error m -> "Eval.Error: " ^ m
  | Division_by_zero -> "Division_by_zero"
  | Sac.Value.Type_error m -> "Type_error: " ^ m

let error_cases =
  [ ( "oob",
      "double f(double[.] v) { return (v[10]); }",
      "f",
      [ darr [ 1.; 2. ] ] );
    ( "oob-kernel",
      "double[.] f(double[.] v, int n) { return (with { ([0] <= iv < \
       [n]) : v[iv[0] + 100]; } : genarray([n], 0.0)); }",
      "f",
      [ darr [ 1.; 2.; 3. ]; vi 3 ] );
    ( "div-by-zero",
      "int f(int n) { return (5 / n); }",
      "f",
      [ vi 0 ] );
    ( "div-by-zero-kernel",
      "double[.] f(int n) { return (with { ([0] <= iv < [n]) : 1.0 * \
       (5 / (iv[0] - iv[0])); } : genarray([n], 0.0)); }",
      "f",
      [ vi 4 ] );
    ( "fold-div-by-zero",
      "double f(int n) { return (with { ([0] <= iv < [n]) : 1.0 * (5 / \
       (iv[0] - iv[0])); } : fold(max, 0.0)); }",
      "f",
      [ vi 64 ] );
    ( "fold-oob",
      "double f(double[.] v, int n) { return (with { ([0] <= iv < [n]) \
       : v[iv[0] + 100]; } : fold(+, 0.0)); }",
      "f",
      [ darr [ 1.; 2.; 3. ]; vi 8 ] );
    ( "unknown-function",
      "double f(double x) { return (x); }",
      "nope",
      [ vd 1.0 ] );
    ( "no-instance",
      "double f(double x) { return (x); }",
      "f",
      [ vd 1.0; vd 2.0 ] ) ]

let test_error_parity () =
  List.iter
    (fun (label, src, name, args) ->
      let prog, bc, _ = compile src in
      let interp =
        outcome_of (fun () ->
            Sac.Eval.run_fun (Sac.Eval.make_ctx prog) name args)
      in
      let vm =
        outcome_of (fun () -> Sac.Vm.run_fun (Sac.Vm.make_ctx bc) name args)
      in
      check_string label interp vm;
      Alcotest.(check bool) (label ^ " errors") true (interp <> "ok"))
    error_cases

(* The parallel fold path must park and re-raise a lane's exception
   with the same outcome as a sequential run.  Only the
   division-by-zero body is pinned here: every element raises the same
   exception, so which lane parks first cannot change the message. *)
let test_error_parity_parallel_fold () =
  let label, src, name, args =
    List.find (fun (l, _, _, _) -> l = "fold-div-by-zero") error_cases
  in
  let prog, bc, _ = compile src in
  let interp =
    outcome_of (fun () -> Sac.Eval.run_fun (Sac.Eval.make_ctx prog) name args)
  in
  let exec = Parallel.Exec.spmd ~lanes:4 in
  let vm =
    outcome_of (fun () ->
        Sac.Vm.run_fun
          (Sac.Vm.make_ctx ~exec ~parallel_threshold:4 bc)
          name args)
  in
  Parallel.Exec.shutdown exec;
  check_string (label ^ "/parallel") interp vm

(* ------------------------------------------------------------------ *)
(* Runner / backend plumbing                                           *)
(* ------------------------------------------------------------------ *)

let test_runner_engines_agree () =
  let compiled = Sacprog.Runner.compile_euler_1d () in
  let _, q_vm = Sacprog.Runner.sod_state compiled ~nx:24 ~steps:4 in
  let _, q_in =
    Sacprog.Runner.sod_state ~engine:`Interp compiled ~nx:24 ~steps:4
  in
  Alcotest.(check (float 0.))
    "sod VM = interpreter (bitwise)" 0.
    (Sacprog.Runner.max_abs_diff q_vm q_in)

(* A tiny threshold must not move the numerics: the runner option only
   changes which execution strategy computes the same bits. *)
let test_runner_par_threshold () =
  let compiled = Sacprog.Runner.compile_euler_1d () in
  let _, q_default = Sacprog.Runner.sod_state compiled ~nx:24 ~steps:4 in
  let exec = Parallel.Exec.spmd ~lanes:3 in
  let _, q_low =
    Sacprog.Runner.sod_state ~exec ~parallel_threshold:2 compiled ~nx:24
      ~steps:4
  in
  Parallel.Exec.shutdown exec;
  Alcotest.(check (float 0.))
    "sod par-threshold 2 = default (bitwise)" 0.
    (Sacprog.Runner.max_abs_diff q_default q_low)

let () =
  Alcotest.run "bytecode"
    [ ( "disassembly",
        [ Alcotest.test_case "golden listings" `Quick test_golden_listings;
          Alcotest.test_case "report summary" `Quick test_report_summary;
          Alcotest.test_case "fusion shrinks" `Quick test_fusion_shrinks ] );
      ( "differential",
        [ Alcotest.test_case "interpreter vs VM" `Quick test_differential;
          Alcotest.test_case "at -O0" `Quick test_differential_o0;
          Alcotest.test_case "superinstructions transparent" `Quick
            test_superinstructions_transparent;
          Alcotest.test_case "fold kernel counter" `Quick
            test_fold_kernel_counter;
          Alcotest.test_case "error parity" `Quick test_error_parity;
          Alcotest.test_case "parallel fold error parity" `Quick
            test_error_parity_parallel_fold;
          Alcotest.test_case "runner engines" `Quick
            test_runner_engines_agree;
          Alcotest.test_case "runner par-threshold" `Quick
            test_runner_par_threshold ] ) ]
