(* Tests for the bytecode stage: golden disassembly listings pinning
   the [Bytecode.pp] format, a differential suite running every
   shipped program through the tree-walking interpreter and the VM
   (kernels on, kernels off, parallel) asserting bitwise-identical
   values and statistics, and error-message parity between the two
   engines. *)

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let value_testable = Alcotest.testable Sac.Value.pp Sac.Value.equal

let darr xs = Sac.Value.Vdarr (Tensor.Nd.of_list1 xs)
let vd x = Sac.Value.Vdbl x
let vi n = Sac.Value.Vint n

let compile ?(options = Sac.Pipeline.default_options) src =
  Sac.Pipeline.compile_bytecode ~options src

(* ------------------------------------------------------------------ *)
(* Golden disassembly listings                                         *)
(* ------------------------------------------------------------------ *)

(* Compiled at -O0 so the listing pins the translation, not the
   optimiser.  Covers the scalar opcodes: constants, loads/stores,
   jumps (for/if), static and builtin calls. *)
let golden_scalar_src =
  {|double sq(double x) { return (x * x); }
double f(double a, int n) {
  s = 0.0;
  for (i = 0; i < n; i = i + 1) {
    s = s + sq(a);
  }
  if (s > 2.0) { s = s - 1.0; } else { s = min(s, a); }
  return (sqrt(s));
}
|}

let golden_scalar_listing =
  {|== constants ==
  c0 = 0
  c1 = 0
  c2 = 1
  c3 = 2
  c4 = 1
== functions ==
fun sq/1 (slots 1, stack 2):
    0: load 0
    1: load 0
    2: bin *
    3: ret
    4: noret
fun f/2 (slots 4, stack 2):
    0: const 0 (0)
    1: store 2
    2: const 1 (0)
    3: store 3
    4: load 3
    5: load 1
    6: bin <
    7: jfalse 18
    8: load 2
    9: load 0
   10: call sq/1
   11: bin +
   12: store 2
   13: load 3
   14: const 2 (1)
   15: bin +
   16: store 3
   17: jmp 4
   18: load 2
   19: const 3 (2)
   20: bin >
   21: jfalse 27
   22: load 2
   23: const 4 (1)
   24: bin -
   25: store 2
   26: jmp 31
   27: load 2
   28: load 0
   29: builtin min/2
   30: store 2
   31: load 2
   32: builtin sqrt/1
   33: ret
   34: noret
== with-loops ==
|}

(* Covers the with-loop descriptors: genarray and fold forms, capture
   lists, standalone body listings. *)
let golden_with_src =
  {|double[.] scale(double[.] v, double k) {
  return (with { ([0] <= iv < shape(v)) : v[iv] * k; } : genarray(shape(v), 0.0));
}
double total(double[.] v) {
  return (with { ([0] <= iv < shape(v)) : v[iv]; } : fold(+, 0.0));
}
|}

let golden_with_listing =
  {|== constants ==
  c0 = 0
  c1 = 0
== functions ==
fun scale/2 (slots 2, stack 4):
    0: const 0 (0)
    1: vec 1
    2: load 0
    3: builtin shape/1
    4: load 0
    5: builtin shape/1
    6: const 1 (0)
    7: with w0
    8: ret
    9: noret
fun total/1 (slots 1, stack 3):
    0: const 0 (0)
    1: vec 1
    2: load 0
    3: builtin shape/1
    4: const 1 (0)
    5: with w1
    6: ret
    7: noret
== with-loops ==
with w0 in scale: genarray, ivar iv, captures [v, k] (slots 3, stack 2):
    0: load 1
    1: load 0
    2: index
    3: load 2
    4: bin *
    5: ret
with w1 in total: fold(+), ivar iv, captures [v] (slots 2, stack 2):
    0: load 1
    1: load 0
    2: index
    3: ret
|}

(* Covers dynamic dispatch of overloaded calls and the short-circuit
   jumps. *)
let golden_overload_src =
  {|double g(double x) { return (x + 1.0); }
double g(double x, double y) { return (x * y); }
bool h(bool a, bool b, double x) { return (a && (g(x) > 0.0 || b)); }
|}

let golden_overload_listing =
  {|== constants ==
  c0 = 1
  c1 = 0
== functions ==
fun g/1 (slots 1, stack 2):
    0: load 0
    1: const 0 (1)
    2: bin +
    3: ret
    4: noret
fun g/2 (slots 2, stack 2):
    0: load 0
    1: load 1
    2: bin *
    3: ret
    4: noret
fun h/3 (slots 3, stack 3):
    0: load 0
    1: and 10
    2: load 2
    3: dyncall g/1
    4: const 1 (0)
    5: bin >
    6: or 9
    7: load 1
    8: bin ||
    9: bin &&
   10: ret
   11: noret
== with-loops ==
|}

let golden_cases =
  [ ("scalar", golden_scalar_src, golden_scalar_listing);
    ("with-loops", golden_with_src, golden_with_listing);
    ("overloads", golden_overload_src, golden_overload_listing) ]

let test_golden_listings () =
  List.iter
    (fun (label, src, expected) ->
      let _, bc, _ = compile ~options:Sac.Pipeline.o0 src in
      check_string label expected (Sac.Bytecode.to_string bc))
    golden_cases

let test_report_summary () =
  let _, bc, report = compile Sacprog.Programs.euler_1d in
  let s =
    match report.Sac.Pipeline.bytecode with
    | Some s -> s
    | None -> Alcotest.fail "compile_bytecode must fill report.bytecode"
  in
  check_int "n_funcs" (Array.length bc.Sac.Bytecode.funcs) s.Sac.Bytecode.n_funcs;
  check_int "n_withs" (Array.length bc.Sac.Bytecode.withs) s.Sac.Bytecode.n_withs;
  check_int "n_consts" (Array.length bc.Sac.Bytecode.consts)
    s.Sac.Bytecode.n_consts;
  Alcotest.(check bool) "has instructions" true (s.Sac.Bytecode.n_instrs > 0)

(* ------------------------------------------------------------------ *)
(* Differential suite: interpreter vs VM                               *)
(* ------------------------------------------------------------------ *)

(* A case is a program plus a call sequence; [Prev] feeds the previous
   call's result through (solver programs build their state first). *)
type arg = V of Sac.Value.t | Prev

let run_seq runner seq =
  let last =
    List.fold_left
      (fun prev (name, args) ->
        let args =
          List.map (function V v -> v | Prev -> Option.get prev) args
        in
        Some (runner name args))
      None seq
  in
  Option.get last

type engine = Interp | Vm | Vm_generic | Vm_parallel

let engine_label = function
  | Interp -> "interp"
  | Vm -> "vm"
  | Vm_generic -> "vm-generic"
  | Vm_parallel -> "vm-parallel"

let run_engine engine prog bc seq =
  match engine with
  | Interp ->
    let ctx = Sac.Eval.make_ctx prog in
    let r = run_seq (Sac.Eval.run_fun ctx) seq in
    (r, Sac.Eval.stats ctx)
  | Vm ->
    let ctx = Sac.Vm.make_ctx bc in
    let r = run_seq (Sac.Vm.run_fun ctx) seq in
    (r, Sac.Vm.stats ctx)
  | Vm_generic ->
    let ctx = Sac.Vm.make_ctx ~kernels:false bc in
    let r = run_seq (Sac.Vm.run_fun ctx) seq in
    (r, Sac.Vm.stats ctx)
  | Vm_parallel ->
    let exec = Parallel.Exec.spmd ~lanes:4 in
    let ctx = Sac.Vm.make_ctx ~exec ~parallel_threshold:4 bc in
    let r = run_seq (Sac.Vm.run_fun ctx) seq in
    let s = Sac.Vm.stats ctx in
    Parallel.Exec.shutdown exec;
    (r, s)

let tbl_sorted t =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [])

let check_stats label (a : Sac.Eval.stats) (b : Sac.Eval.stats) =
  check_int (label ^ ": with_loops") a.Sac.Eval.with_loops
    b.Sac.Eval.with_loops;
  check_int (label ^ ": elements") a.Sac.Eval.elements b.Sac.Eval.elements;
  check_int (label ^ ": calls") a.Sac.Eval.calls b.Sac.Eval.calls;
  Alcotest.(check (list (pair string int)))
    (label ^ ": fun_calls")
    (tbl_sorted a.Sac.Eval.fun_calls)
    (tbl_sorted b.Sac.Eval.fun_calls);
  Alcotest.(check (list (pair string int)))
    (label ^ ": with_execs")
    (tbl_sorted a.Sac.Eval.with_execs)
    (tbl_sorted b.Sac.Eval.with_execs)

(* Every shipped program, with entry calls small enough for a quick
   run, plus targeted sources exercising semantics the solvers don't:
   overload dispatch, integer folds, bool/vector kernels, fallback
   bodies the specialiser rejects. *)
let differential_cases =
  [ ( "dfdx",
      Sacprog.Programs.df_dx_no_boundary,
      [ ("dfDxNoBoundary", [ V (darr [ 1.; 2.; 4.; 8. ]); V (vd 0.5) ]) ] );
    ( "getdt",
      Sacprog.Programs.get_dt,
      [ ( "getDt",
          [ V (darr [ 0.5; -1. ]); V (darr [ 1.; 1. ]);
            V (darr [ 1.; 0.5 ]); V (vd 1.4); V (vd 0.01); V (vd 0.5) ] ) ] );
    ( "euler1d",
      Sacprog.Programs.euler_1d,
      [ ("sod_init", [ V (vi 32) ]);
        ( "run",
          [ Prev; V (vi 5); V (vd 1.4); V (vd (1. /. 32.)); V (vd 0.5) ] ) ] );
    ( "euler2d",
      Sacprog.Programs.euler_2d,
      [ ("quadrant_init", [ V (vi 8) ]);
        ( "run2",
          [ Prev; V (vi 2); V (vd 1.4); V (vd 0.125); V (vd 0.125);
            V (vd 0.5) ] ) ] );
    ( "poisson1d",
      Sacprog.Programs.poisson_1d,
      [ ("poisson1d", [ V (darr [ 1.; 2.; 3.; 4.; 5. ]); V (vd 0.1) ]) ] );
    ( "overloads",
      golden_overload_src,
      [ ("h", [ V (Sac.Value.Vbool true); V (Sac.Value.Vbool false);
                V (vd 2.0) ]) ] );
    ( "int-fold",
      "double f(int n) { return (1.0 * (with { ([0] <= iv < [n]) : iv[0] \
       * iv[0]; } : fold(+, 0))); }",
      [ ("f", [ V (vi 100) ]) ] );
    ( "mixed-cond-kernel",
      (* int-vs-double conditional arms: the specialiser must bail to
         the generic body, which still has to match the interpreter. *)
      "double[.] f(int n) { return (with { ([0] <= iv < [n]) : 1.0 * \
       (iv[0] > 2 ? 1 : 0.5); } : genarray([n], 0.0)); }",
      [ ("f", [ V (vi 9) ]) ] );
    ( "nested-with",
      "double[.,.] f(int n) { return (with { ([0,0] <= iv < [n,n]) : \
       (with { ([0] <= jv < [n]) : 1.0 * (iv[0] + jv[0]); } : fold(+, \
       0.0)); } : genarray([n,n], 0.0)); }",
      [ ("f", [ V (vi 7) ]) ] );
    ( "modarray",
      "double[.] f(double[.] v) { return (with { ([1] <= iv < [3]) : \
       v[iv] * 10.0; } : modarray(v)); }",
      [ ("f", [ V (darr [ 1.; 2.; 3.; 4. ]) ]) ] );
    ( "builtin-heavy",
      "double f(double[.] v) { return (maxval(fabs(v)) + minval(v) + \
       sum(sqrt(fabs(v)))); }",
      [ ("f", [ V (darr [ -4.; 9.; -16. ]) ]) ] ) ]

let test_differential () =
  List.iter
    (fun (label, src, seq) ->
      let prog, bc, _ = compile src in
      let r0, s0 = run_engine Interp prog bc seq in
      List.iter
        (fun e ->
          let r, s = run_engine e prog bc seq in
          let l = label ^ "/" ^ engine_label e in
          Alcotest.check value_testable l r0 r;
          check_stats l s0 s)
        [ Vm; Vm_generic; Vm_parallel ])
    differential_cases

(* -O0 bytecode must agree too: the optimiser rewrites many forms the
   lowering otherwise sees (no folding, no unrolling). *)
let test_differential_o0 () =
  List.iter
    (fun (label, src, seq) ->
      let prog, bc, _ = compile ~options:Sac.Pipeline.o0 src in
      let r0, _ = run_engine Interp prog bc seq in
      let r1, _ = run_engine Vm prog bc seq in
      Alcotest.check value_testable (label ^ "/O0") r0 r1)
    differential_cases

(* ------------------------------------------------------------------ *)
(* Error-message parity                                                *)
(* ------------------------------------------------------------------ *)

let outcome_of f =
  try
    ignore (f ());
    "ok"
  with
  | Sac.Eval.Error m -> "Eval.Error: " ^ m
  | Division_by_zero -> "Division_by_zero"
  | Sac.Value.Type_error m -> "Type_error: " ^ m

let error_cases =
  [ ( "oob",
      "double f(double[.] v) { return (v[10]); }",
      "f",
      [ darr [ 1.; 2. ] ] );
    ( "oob-kernel",
      "double[.] f(double[.] v, int n) { return (with { ([0] <= iv < \
       [n]) : v[iv[0] + 100]; } : genarray([n], 0.0)); }",
      "f",
      [ darr [ 1.; 2.; 3. ]; vi 3 ] );
    ( "div-by-zero",
      "int f(int n) { return (5 / n); }",
      "f",
      [ vi 0 ] );
    ( "div-by-zero-kernel",
      "double[.] f(int n) { return (with { ([0] <= iv < [n]) : 1.0 * \
       (5 / (iv[0] - iv[0])); } : genarray([n], 0.0)); }",
      "f",
      [ vi 4 ] );
    ( "unknown-function",
      "double f(double x) { return (x); }",
      "nope",
      [ vd 1.0 ] );
    ( "no-instance",
      "double f(double x) { return (x); }",
      "f",
      [ vd 1.0; vd 2.0 ] ) ]

let test_error_parity () =
  List.iter
    (fun (label, src, name, args) ->
      let prog, bc, _ = compile src in
      let interp =
        outcome_of (fun () ->
            Sac.Eval.run_fun (Sac.Eval.make_ctx prog) name args)
      in
      let vm =
        outcome_of (fun () -> Sac.Vm.run_fun (Sac.Vm.make_ctx bc) name args)
      in
      check_string label interp vm;
      Alcotest.(check bool) (label ^ " errors") true (interp <> "ok"))
    error_cases

(* ------------------------------------------------------------------ *)
(* Runner / backend plumbing                                           *)
(* ------------------------------------------------------------------ *)

let test_runner_engines_agree () =
  let compiled = Sacprog.Runner.compile_euler_1d () in
  let _, q_vm = Sacprog.Runner.sod_state compiled ~nx:24 ~steps:4 in
  let _, q_in =
    Sacprog.Runner.sod_state ~engine:`Interp compiled ~nx:24 ~steps:4
  in
  Alcotest.(check (float 0.))
    "sod VM = interpreter (bitwise)" 0.
    (Sacprog.Runner.max_abs_diff q_vm q_in)

let () =
  Alcotest.run "bytecode"
    [ ( "disassembly",
        [ Alcotest.test_case "golden listings" `Quick test_golden_listings;
          Alcotest.test_case "report summary" `Quick test_report_summary ] );
      ( "differential",
        [ Alcotest.test_case "interpreter vs VM" `Quick test_differential;
          Alcotest.test_case "at -O0" `Quick test_differential_o0;
          Alcotest.test_case "error parity" `Quick test_error_parity;
          Alcotest.test_case "runner engines" `Quick
            test_runner_engines_agree ] ) ]
