(* Tests for the parallel runtime: chunking, SPMD pool, fork/join and
   the scaling cost model.  Lane counts stay small so the suite runs on
   a single-core container. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Chunk                                                               *)
(* ------------------------------------------------------------------ *)

let test_chunk_cover () =
  let ranges = Parallel.Chunk.split ~lo:3 ~hi:20 ~parts:5 in
  check_int "count" 5 (Array.length ranges);
  check_int "first lo" 3 ranges.(0).Parallel.Chunk.lo;
  check_int "last hi" 20 ranges.(4).Parallel.Chunk.hi;
  (* Contiguous cover. *)
  for i = 0 to 3 do
    check_int "contiguous" ranges.(i).Parallel.Chunk.hi
      ranges.(i + 1).Parallel.Chunk.lo
  done;
  (* Balanced: sizes differ by at most one. *)
  let sizes = Array.map Parallel.Chunk.length ranges in
  let mn = Array.fold_left min max_int sizes
  and mx = Array.fold_left max min_int sizes in
  check_bool "balanced" true (mx - mn <= 1)

let test_chunk_more_parts_than_work () =
  let ranges = Parallel.Chunk.split ~lo:0 ~hi:2 ~parts:4 in
  let total = Array.fold_left (fun a r -> a + Parallel.Chunk.length r) 0 ranges in
  check_int "total" 2 total

let test_chunk_empty () =
  let ranges = Parallel.Chunk.split ~lo:5 ~hi:5 ~parts:3 in
  Array.iter (fun r -> check_int "empty" 0 (Parallel.Chunk.length r)) ranges

let test_chunk_of_matches_split () =
  let lo = 1 and hi = 103 and parts = 7 in
  let ranges = Parallel.Chunk.split ~lo ~hi ~parts in
  for which = 0 to parts - 1 do
    let r = Parallel.Chunk.chunk_of ~lo ~hi ~parts ~which in
    check_int "lo" ranges.(which).Parallel.Chunk.lo r.Parallel.Chunk.lo;
    check_int "hi" ranges.(which).Parallel.Chunk.hi r.Parallel.Chunk.hi
  done

let test_chunk_invalid () =
  check_bool "parts=0 raises" true
    (try
       ignore (Parallel.Chunk.split ~lo:0 ~hi:4 ~parts:0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Pool (SPMD)                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_parallel_for () =
  Parallel.Pool.with_pool ~lanes:4 (fun pool ->
      let n = 10_000 in
      let a = Array.make n 0 in
      Parallel.Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> a.(i) <- i);
      let sum = Array.fold_left ( + ) 0 a in
      check_int "sum 0..n-1" (n * (n - 1) / 2) sum)

let test_pool_lane_ids () =
  Parallel.Pool.with_pool ~lanes:3 (fun pool ->
      let seen = Array.make 3 false in
      Parallel.Pool.run pool (fun lane -> seen.(lane) <- true);
      Array.iteri
        (fun i s -> check_bool (Printf.sprintf "lane %d ran" i) true s)
        seen)

let test_pool_many_regions () =
  (* Reuse of parked workers across many regions is the whole point of
     the SPMD design; make sure repeated regions stay correct. *)
  Parallel.Pool.with_pool ~lanes:2 (fun pool ->
      let acc = Array.make 100 0 in
      for round = 1 to 50 do
        Parallel.Pool.parallel_for pool ~lo:0 ~hi:100 (fun i ->
            acc.(i) <- acc.(i) + round)
      done;
      let expected = 50 * 51 / 2 in
      Array.iteri
        (fun i v -> check_int (Printf.sprintf "acc(%d)" i) expected v)
        acc;
      check_int "barriers" 50 (Parallel.Pool.barriers_crossed pool))

let test_pool_single_lane () =
  Parallel.Pool.with_pool ~lanes:1 (fun pool ->
      let hits = ref 0 in
      Parallel.Pool.parallel_for pool ~lo:0 ~hi:10 (fun _ -> incr hits);
      check_int "all iterations" 10 !hits)

let test_pool_dynamic_schedule () =
  (* Dynamic self-scheduling covers the range exactly once, like
     static (the paper's OMP_SCHEDULE experiment: "negligible
     difference" beyond distribution policy). *)
  Parallel.Pool.with_pool ~lanes:3 (fun pool ->
      let n = 1000 in
      let hits = Array.make n (Atomic.make 0) in
      for i = 0 to n - 1 do
        hits.(i) <- Atomic.make 0
      done;
      Parallel.Pool.parallel_for ~schedule:(Parallel.Chunk.Dynamic 7) pool
        ~lo:0 ~hi:n (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i c ->
          check_int (Printf.sprintf "cell %d once" i) 1 (Atomic.get c))
        hits)

let test_schedule_parsing () =
  check_bool "static" true
    (Parallel.Chunk.schedule_of_string "static" = Some Parallel.Chunk.Static);
  check_bool "dynamic default" true
    (Parallel.Chunk.schedule_of_string "dynamic"
     = Some (Parallel.Chunk.Dynamic 16));
  check_bool "dynamic sized" true
    (Parallel.Chunk.schedule_of_string "dynamic:4"
     = Some (Parallel.Chunk.Dynamic 4));
  check_bool "junk" true (Parallel.Chunk.schedule_of_string "guided" = None);
  Alcotest.(check string) "name" "dynamic:4"
    (Parallel.Chunk.schedule_name (Parallel.Chunk.Dynamic 4))

let test_exec_dynamic_matches_static () =
  let run schedule =
    let sched = Parallel.Exec.spmd ~lanes:2 in
    let a = Array.make 500 0. in
    Parallel.Exec.parallel_for ?schedule sched ~lo:0 ~hi:500 (fun i ->
        a.(i) <- Float.sqrt (float_of_int i));
    Parallel.Exec.shutdown sched;
    a
  in
  let s = run None
  and d = run (Some (Parallel.Chunk.Dynamic 13)) in
  Alcotest.(check (array (float 0.))) "identical results" s d

exception Boom of int

let test_pool_exception_propagates () =
  Parallel.Pool.with_pool ~lanes:2 (fun pool ->
      (* Static chunking over [0,100) with 2 lanes puts i=75 on lane 1
         (a parked worker) and i=10 on lane 0 (the caller); the barrier
         must complete and the exception re-raise in the caller in both
         cases. *)
      List.iter
        (fun bad ->
          let raised =
            try
              Parallel.Pool.parallel_for pool ~lo:0 ~hi:100 (fun i ->
                  if i = bad then raise (Boom i));
              false
            with Boom i -> i = bad
          in
          check_bool (Printf.sprintf "Boom %d re-raised" bad) true raised)
        [ 75; 10 ];
      (* A failed region must not poison the pool. *)
      let hits = Atomic.make 0 in
      Parallel.Pool.parallel_for pool ~lo:0 ~hi:10 (fun _ ->
          Atomic.incr hits);
      check_int "pool usable afterwards" 10 (Atomic.get hits))

let test_pool_run_phases_barrier () =
  (* Phase k+1 reads what *other* lanes wrote in phase k, so any
     missing or broken in-region barrier shows up as a wrong sum.
     Repeat dispatches to exercise the sense reset between them. *)
  Parallel.Pool.with_pool ~lanes:3 (fun pool ->
      let b0 = Parallel.Pool.barriers_crossed pool in
      for round = 1 to 4 do
        let a = Array.make 3 0 in
        let sums = Array.make 3 0 in
        Parallel.Pool.run_phases pool ~phases:2 (fun ~phase ~lane ->
            if phase = 0 then a.(lane) <- (10 * round) + lane
            else sums.(lane) <- a.(0) + a.(1) + a.(2));
        let expected = (30 * round) + 3 in
        Array.iteri
          (fun l s ->
            check_int (Printf.sprintf "round %d lane %d sum" round l)
              expected s)
          sums
      done;
      (* One dispatch per run_phases; in-region barriers are free. *)
      check_int "one barrier pair per dispatch" (b0 + 4)
        (Parallel.Pool.barriers_crossed pool))

let test_pool_run_phases_on_phase () =
  Parallel.Pool.with_pool ~lanes:2 (fun pool ->
      let seen = ref [] in
      Parallel.Pool.run_phases pool ~phases:3
        ~on_phase:(fun k -> seen := k :: !seen)
        (fun ~phase:_ ~lane:_ -> ());
      Alcotest.(check (list int)) "hook ran once per phase" [ 2; 1; 0 ] !seen;
      (* Zero phases: nothing runs, nothing hangs. *)
      Parallel.Pool.run_phases pool ~phases:0
        ~on_phase:(fun _ -> Alcotest.fail "hook on empty dispatch")
        (fun ~phase:_ ~lane:_ -> Alcotest.fail "body on empty dispatch"))

let test_pool_run_phases_exception () =
  (* A lane raising mid-sequence must still attend every remaining
     barrier; the first exception resurfaces at the join and the pool
     stays usable. *)
  Parallel.Pool.with_pool ~lanes:2 (fun pool ->
      let raised =
        try
          Parallel.Pool.run_phases pool ~phases:3 (fun ~phase ~lane ->
              if phase = 1 && lane = 1 then raise (Boom phase));
          false
        with Boom 1 -> true
      in
      check_bool "exception from middle phase re-raised" true raised;
      let hits = Atomic.make 0 in
      Parallel.Pool.run_phases pool ~phases:2 (fun ~phase:_ ~lane:_ ->
          Atomic.incr hits);
      check_int "pool usable afterwards" 4 (Atomic.get hits))

let test_pool_stop_idempotent () =
  (* stop twice is a no-op... *)
  let pool = Parallel.Pool.create ~lanes:2 in
  Parallel.Pool.parallel_for pool ~lo:0 ~hi:10 ignore;
  Parallel.Pool.stop pool;
  Parallel.Pool.stop pool;
  (* ...including right after a region whose barrier re-raised a
     worker exception (the regression this satellite pins: a hang or
     double-join here would deadlock the suite). *)
  let pool = Parallel.Pool.create ~lanes:2 in
  (try
     Parallel.Pool.parallel_for pool ~lo:0 ~hi:10 (fun i ->
         if i >= 5 then raise (Boom i))
   with Boom _ -> ());
  Parallel.Pool.stop pool;
  Parallel.Pool.stop pool;
  check_bool "stop is idempotent" true true

(* ------------------------------------------------------------------ *)
(* Fork_join                                                           *)
(* ------------------------------------------------------------------ *)

let test_fork_join_correct () =
  let n = 5_000 in
  let a = Array.make n 0 in
  Parallel.Fork_join.parallel_for ~lanes:3 ~lo:0 ~hi:n (fun i ->
      a.(i) <- 2 * i);
  let sum = Array.fold_left ( + ) 0 a in
  check_int "sum" (n * (n - 1)) sum

let test_fork_join_region_count () =
  Parallel.Fork_join.reset_regions ();
  for _ = 1 to 7 do
    Parallel.Fork_join.parallel_for ~lanes:2 ~lo:0 ~hi:4 ignore
  done;
  (* Empty ranges do not count. *)
  Parallel.Fork_join.parallel_for ~lanes:2 ~lo:0 ~hi:0 ignore;
  check_int "regions" 7 (Parallel.Fork_join.regions_executed ())

(* ------------------------------------------------------------------ *)
(* Exec                                                                *)
(* ------------------------------------------------------------------ *)

let exec_kinds () =
  [ ("sequential", Parallel.Exec.sequential ());
    ("spmd", Parallel.Exec.spmd ~lanes:2);
    ("fork-join", Parallel.Exec.fork_join ~lanes:2) ]

let test_exec_parallel_for () =
  List.iter
    (fun (name, sched) ->
      let a = Array.make 1000 0. in
      Parallel.Exec.parallel_for sched ~lo:0 ~hi:1000 (fun i ->
          a.(i) <- float_of_int i);
      check_float (name ^ " sum") 499500. (Array.fold_left ( +. ) 0. a);
      Parallel.Exec.shutdown sched)
    (exec_kinds ())

let test_exec_reduce_max () =
  List.iter
    (fun (name, sched) ->
      (* max of i*(100-i) over [0,100) is at i=50. *)
      let v =
        Parallel.Exec.parallel_reduce_max sched ~lo:0 ~hi:100 (fun i ->
            float_of_int (i * (100 - i)))
      in
      check_float (name ^ " argmax value") 2500. v;
      let empty =
        Parallel.Exec.parallel_reduce_max sched ~lo:5 ~hi:5 (fun _ -> 1.)
      in
      check_bool (name ^ " empty") true (empty = Float.neg_infinity);
      Parallel.Exec.shutdown sched)
    (exec_kinds ())

let test_exec_region_counting () =
  let sched = Parallel.Exec.sequential () in
  Parallel.Exec.parallel_for sched ~lo:0 ~hi:10 ignore;
  Parallel.Exec.parallel_for sched ~lo:0 ~hi:10 ignore;
  ignore (Parallel.Exec.parallel_reduce_max sched ~lo:0 ~hi:4 float_of_int);
  check_int "three regions" 3 (Parallel.Exec.regions sched);
  Parallel.Exec.reset_regions sched;
  check_int "reset" 0 (Parallel.Exec.regions sched);
  (* Empty region does not count. *)
  Parallel.Exec.parallel_for sched ~lo:0 ~hi:0 ignore;
  check_int "empty not counted" 0 (Parallel.Exec.regions sched)

let test_exec_for_lanes_cover () =
  (* Every index in the range runs exactly once and sees a lane id in
     [0, lanes), under both schedules, on every scheduler. *)
  List.iter
    (fun (name, sched) ->
      List.iter
        (fun (sname, schedule) ->
          let n = 500 in
          let hits = Array.init n (fun _ -> Atomic.make 0) in
          let lanes = Parallel.Exec.lanes sched in
          let bad_lane = Atomic.make false in
          Parallel.Exec.parallel_for_lanes ?schedule sched ~lo:0 ~hi:n
            (fun ~lane i ->
              if lane < 0 || lane >= lanes then Atomic.set bad_lane true;
              Atomic.incr hits.(i));
          Array.iteri
            (fun i c ->
              check_int
                (Printf.sprintf "%s/%s idx %d once" name sname i)
                1 (Atomic.get c))
            hits;
          check_bool
            (Printf.sprintf "%s/%s lane ids in range" name sname)
            false (Atomic.get bad_lane))
        [ ("static", None); ("dynamic", Some (Parallel.Chunk.Dynamic 7)) ];
      Parallel.Exec.shutdown sched)
    (exec_kinds ())

let test_exec_for_lanes_edges () =
  (* More lanes than iterations, and an empty range. *)
  List.iter
    (fun (name, sched) ->
      let hits = Array.init 2 (fun _ -> Atomic.make 0) in
      Parallel.Exec.parallel_for_lanes sched ~lo:0 ~hi:2 (fun ~lane:_ i ->
          Atomic.incr hits.(i));
      Array.iteri
        (fun i c ->
          check_int (Printf.sprintf "%s short idx %d" name i) 1
            (Atomic.get c))
        hits;
      let ran = Atomic.make false in
      Parallel.Exec.parallel_for_lanes sched ~lo:5 ~hi:5 (fun ~lane:_ _ ->
          Atomic.set ran true);
      check_bool (name ^ " empty range runs nothing") false (Atomic.get ran);
      Parallel.Exec.shutdown sched)
    [ ("sequential", Parallel.Exec.sequential ());
      ("spmd", Parallel.Exec.spmd ~lanes:3);
      ("fork-join", Parallel.Exec.fork_join ~lanes:3) ]

let test_exec_bucket_words () =
  let sched = Parallel.Exec.sequential () in
  Parallel.Exec.parallel_for ~region:Parallel.Exec.Rhs sched ~lo:0 ~hi:100
    (fun i -> ignore (Sys.opaque_identity (Array.make 64 (float_of_int i))));
  (match List.assoc_opt Parallel.Exec.Rhs (Parallel.Exec.buckets sched) with
   | None -> Alcotest.fail "rhs bucket missing"
   | Some b ->
     check_int "one region" 1 b.Parallel.Exec.count;
     check_bool "allocation attributed to the bucket" true
       (b.Parallel.Exec.minor_words > 0.));
  Parallel.Exec.reset_buckets sched;
  check_bool "buckets reset" true (Parallel.Exec.buckets sched = [])

let test_exec_parallel_phases () =
  (* Two dependent phases (phase 1 reads across phase 0's whole output)
     must produce the same values on every scheduler, and region
     accounting must reflect the folding: one dispatch under
     sequential/spmd, one region per phase under fork/join. *)
  let n = 200 in
  let expected = Array.init n (fun i -> float_of_int (i + (n - 1 - i))) in
  List.iter
    (fun (name, sched) ->
      let a = Array.make n 0. and b = Array.make n 0. in
      let r0 = Parallel.Exec.regions sched in
      Parallel.Exec.parallel_phases sched
        [| { Parallel.Exec.region = Parallel.Exec.Rhs;
             lo = 0;
             hi = n;
             body = (fun ~lane:_ i -> a.(i) <- float_of_int i) };
           { Parallel.Exec.region = Parallel.Exec.Rk_combine;
             lo = 0;
             hi = n;
             body = (fun ~lane:_ i -> b.(i) <- a.(i) +. a.(n - 1 - i)) } |];
      Alcotest.(check (array (float 0.))) (name ^ " phase values") expected b;
      let folded =
        match name with "fork-join" -> 2 | _ -> 1
      in
      check_int (name ^ " regions for one dispatch") (r0 + folded)
        (Parallel.Exec.regions sched);
      (* Empty phase array and empty ranges cost nothing. *)
      Parallel.Exec.parallel_phases sched [||];
      Parallel.Exec.parallel_phases sched
        [| { Parallel.Exec.region = Parallel.Exec.Other;
             lo = 5;
             hi = 5;
             body = (fun ~lane:_ _ -> Alcotest.fail "empty phase ran") } |];
      check_int (name ^ " empty dispatches")
        (r0 + folded
        + match name with "fork-join" -> 0 | _ -> 1)
        (Parallel.Exec.regions sched);
      Parallel.Exec.shutdown sched)
    (exec_kinds ())

let test_exec_phase_attribution () =
  (* Each phase is charged to its own region bucket, once per dispatch,
     and the per-phase buckets cannot exceed the dispatch wall time
     observed from outside. *)
  List.iter
    (fun (name, sched) ->
      Parallel.Exec.reset_buckets sched;
      let n = 5_000 in
      let a = Array.make n 0. in
      let t0 = Parallel.Clock.now_ns () in
      Parallel.Exec.parallel_phases sched
        [| { Parallel.Exec.region = Parallel.Exec.Rhs;
             lo = 0;
             hi = n;
             body = (fun ~lane:_ i -> a.(i) <- Float.sqrt (float_of_int i)) };
           { Parallel.Exec.region = Parallel.Exec.Rk_combine;
             lo = 0;
             hi = n;
             body = (fun ~lane:_ i -> a.(i) <- a.(i) *. 2.) } |];
      let wall = Parallel.Clock.now_ns () -. t0 in
      let bucket r =
        match List.assoc_opt r (Parallel.Exec.buckets sched) with
        | Some b -> b
        | None ->
          Alcotest.failf "%s: missing bucket %s" name
            (Parallel.Exec.region_name r)
      in
      let rhs = bucket Parallel.Exec.Rhs
      and rk = bucket Parallel.Exec.Rk_combine in
      check_int (name ^ " rhs charged once") 1 rhs.Parallel.Exec.count;
      check_int (name ^ " rk charged once") 1 rk.Parallel.Exec.count;
      check_bool (name ^ " phase times non-negative") true
        (rhs.Parallel.Exec.total_ns >= 0. && rk.Parallel.Exec.total_ns >= 0.);
      check_bool (name ^ " phase buckets sum to <= dispatch wall") true
        (rhs.Parallel.Exec.total_ns +. rk.Parallel.Exec.total_ns
         <= wall +. 1e5);
      Parallel.Exec.shutdown sched)
    (exec_kinds ())

let test_exec_reduce_lanes () =
  List.iter
    (fun (name, sched) ->
      (* Max via per-lane slots must agree exactly with the boxed
         reduction (max is order-independent). *)
      let f i = float_of_int (i * (100 - i)) in
      let via_slots =
        Parallel.Exec.parallel_reduce_lanes sched ~lo:0 ~hi:100
          ~init:Float.neg_infinity ~combine:Float.max
          (fun ~acc ~cell ~lane:_ i ->
            if f i > acc.(cell) then acc.(cell) <- f i)
      in
      check_float (name ^ " max via lanes") 2500. via_slots;
      (* A sum reduction exercises [combine] over the per-lane
         partials (small integers: float addition is exact). *)
      let sum =
        Parallel.Exec.parallel_reduce_lanes sched ~lo:0 ~hi:1000 ~init:0.
          ~combine:( +. )
          (fun ~acc ~cell ~lane:_ i ->
            acc.(cell) <- acc.(cell) +. float_of_int i)
      in
      check_float (name ^ " sum via lanes") 499500. sum;
      (* Empty range returns init without opening a region. *)
      let r0 = Parallel.Exec.regions sched in
      check_float (name ^ " empty returns init") 42.
        (Parallel.Exec.parallel_reduce_lanes sched ~lo:7 ~hi:7 ~init:42.
           ~combine:( +. )
           (fun ~acc:_ ~cell:_ ~lane:_ _ -> Alcotest.fail "body ran"));
      check_int (name ^ " empty opens no region") r0
        (Parallel.Exec.regions sched);
      Parallel.Exec.shutdown sched)
    (exec_kinds ())

(* ------------------------------------------------------------------ *)
(* Workspace and Clock                                                 *)
(* ------------------------------------------------------------------ *)

let test_workspace_reuse () =
  let ws = Parallel.Workspace.create ~lanes:2 () in
  let a = Parallel.Workspace.buffer ws ~lane:0 ~slot:3 100 in
  check_bool "length >= n" true (Array.length a >= 100);
  let b = Parallel.Workspace.buffer ws ~lane:0 ~slot:3 80 in
  check_bool "same array back" true (a == b);
  let c = Parallel.Workspace.buffer ws ~lane:1 ~slot:3 10 in
  check_bool "lanes independent" true (not (c == a));
  check_int "lanes" 2 (Parallel.Workspace.lanes ws)

let test_workspace_growth () =
  let ws = Parallel.Workspace.create ~lanes:1 () in
  let g0 = Parallel.Workspace.growths ws in
  let a = Parallel.Workspace.buffer ws ~lane:0 ~slot:0 10 in
  check_int "first touch grows" (g0 + 1) (Parallel.Workspace.growths ws);
  let b =
    Parallel.Workspace.buffer ws ~lane:0 ~slot:0 (Array.length a + 1)
  in
  check_bool "grown" true (Array.length b > Array.length a);
  check_int "second growth" (g0 + 2) (Parallel.Workspace.growths ws);
  ignore (Parallel.Workspace.buffer ws ~lane:0 ~slot:0 5);
  check_int "steady state allocates nothing" (g0 + 2)
    (Parallel.Workspace.growths ws)

let test_workspace_invalid () =
  let ws = Parallel.Workspace.create ~lanes:2 ~slots:4 () in
  let raises f = try f (); false with Invalid_argument _ -> true in
  check_bool "bad lane" true
    (raises (fun () ->
         ignore (Parallel.Workspace.buffer ws ~lane:2 ~slot:0 1)));
  check_bool "bad slot" true
    (raises (fun () ->
         ignore (Parallel.Workspace.buffer ws ~lane:0 ~slot:4 1)));
  check_bool "bad n" true
    (raises (fun () ->
         ignore (Parallel.Workspace.buffer ws ~lane:0 ~slot:0 (-1))));
  check_bool "bad lanes" true
    (raises (fun () -> ignore (Parallel.Workspace.create ~lanes:0 ())))

let test_exec_workspace_sized () =
  List.iter
    (fun (name, sched) ->
      check_int (name ^ " workspace lanes")
        (Parallel.Exec.lanes sched)
        (Parallel.Workspace.lanes (Parallel.Exec.workspace sched));
      Parallel.Exec.shutdown sched)
    (exec_kinds ())

let test_clock_monotonic () =
  let t0 = Parallel.Clock.now_ns () in
  let t1 = Parallel.Clock.now_ns () in
  check_bool "positive" true (t0 > 0.);
  check_bool "non-decreasing" true (t1 >= t0);
  let s0 = Parallel.Clock.now_s () in
  let s1 = Parallel.Clock.now_s () in
  check_bool "seconds non-decreasing" true (s1 >= s0);
  check_bool "seconds agree with ns" true
    (Float.abs ((Parallel.Clock.now_ns () *. 1e-9) -. s1) < 1.)

let test_exec_describe () =
  Alcotest.(check string) "seq" "sequential"
    (Parallel.Exec.describe (Parallel.Exec.sequential ()));
  let s = Parallel.Exec.spmd ~lanes:2 in
  Alcotest.(check string) "spmd" "spmd(2)" (Parallel.Exec.describe s);
  Parallel.Exec.shutdown s;
  Alcotest.(check string) "fj" "fork-join(3)"
    (Parallel.Exec.describe (Parallel.Exec.fork_join ~lanes:3))

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let sample_sac =
  (* Few fused regions per step, SaC-style. *)
  { Parallel.Cost_model.serial_s = 0.001;
    parallel_s = 0.10;
    regions_per_step = 12. }

let sample_fortran =
  (* Inner-loop auto-parallelisation: one region per row per loop
     nest, thousands per step. *)
  { Parallel.Cost_model.serial_s = 0.001;
    parallel_s = 0.07;
    regions_per_step = 12_000. }

let p = Parallel.Cost_model.default

let test_model_one_core_no_overhead () =
  let t =
    Parallel.Cost_model.predict_step p Parallel.Cost_model.Spin_barrier
      sample_sac ~cores:1
  in
  check_float "1 core = serial + parallel" 0.101 t

let test_model_spin_scales () =
  let t1 =
    Parallel.Cost_model.predict_step p Spin_barrier sample_sac ~cores:1
  and t8 =
    Parallel.Cost_model.predict_step p Spin_barrier sample_sac ~cores:8
  and t16 =
    Parallel.Cost_model.predict_step p Spin_barrier sample_sac ~cores:16
  in
  check_bool "8 cores faster" true (t8 < t1 /. 4.);
  check_bool "16 cores not slower than 8" true (t16 <= t8 *. 1.05)

let test_model_fork_join_degrades () =
  (* With many tiny regions, fork/join overhead eventually dominates:
     the paper's Fortran curve degrades beyond a few cores. *)
  let t cores =
    Parallel.Cost_model.predict_step p Os_fork_join
      { sample_fortran with parallel_s = 0.04 }
      ~cores
  in
  check_bool "more cores eventually slower" true (t 16 > t 2)

let test_model_speedup_monotone_small () =
  let s2 = Parallel.Cost_model.speedup p Spin_barrier sample_sac ~cores:2
  and s4 = Parallel.Cost_model.speedup p Spin_barrier sample_sac ~cores:4 in
  check_bool "s2 > 1" true (s2 > 1.5);
  check_bool "s4 > s2" true (s4 > s2)

let test_model_crossover () =
  (* SaC slower sequentially but scalable; Fortran fast at 1 core but
     burdened with fork/join overhead: a crossover must exist. *)
  let sac = { sample_sac with parallel_s = 0.2 } in
  let fortran = { sample_fortran with parallel_s = 0.05 } in
  match
    Parallel.Cost_model.crossover p
      ~fast_serial:(Parallel.Cost_model.Os_fork_join, fortran)
      ~scalable:(Parallel.Cost_model.Spin_barrier, sac)
      ~max_cores:16
  with
  | None -> Alcotest.fail "expected a crossover"
  | Some c ->
    check_bool "crossover beyond 1 core" true (c > 1);
    check_bool "crossover within 16" true (c <= 16)

let test_model_bandwidth_cap () =
  let uncapped = { p with Parallel.Cost_model.bandwidth_cap = 1000. } in
  let t16_capped =
    Parallel.Cost_model.predict_step p Spin_barrier sample_sac ~cores:16
  and t16_free =
    Parallel.Cost_model.predict_step uncapped Spin_barrier sample_sac
      ~cores:16
  in
  check_bool "cap slows the 16-core run" true (t16_capped > t16_free)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_chunks_partition =
  QCheck2.Test.make ~name:"chunks partition the range" ~count:300
    QCheck2.Gen.(
      let* lo = int_range 0 50 in
      let* len = int_range 0 200 in
      let* parts = int_range 1 17 in
      return (lo, lo + len, parts))
    (fun (lo, hi, parts) ->
      let ranges = Parallel.Chunk.split ~lo ~hi ~parts in
      let total =
        Array.fold_left (fun a r -> a + Parallel.Chunk.length r) 0 ranges
      in
      let contiguous = ref (ranges.(0).Parallel.Chunk.lo = lo) in
      for i = 0 to parts - 2 do
        if ranges.(i).Parallel.Chunk.hi <> ranges.(i + 1).Parallel.Chunk.lo
        then contiguous := false
      done;
      total = hi - lo
      && !contiguous
      && ranges.(parts - 1).Parallel.Chunk.hi = hi)

let prop_model_overhead_monotone =
  QCheck2.Test.make ~name:"overhead grows with cores" ~count:100
    QCheck2.Gen.(int_range 2 64)
    (fun cores ->
      let open Parallel.Cost_model in
      overhead_per_region p Os_fork_join ~cores
      >= overhead_per_region p Os_fork_join ~cores:(cores - 1)
      && overhead_per_region p Spin_barrier ~cores
         < overhead_per_region p Os_fork_join ~cores)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_chunks_partition; prop_model_overhead_monotone ]

let () =
  Alcotest.run "parallel"
    [ ( "chunk",
        [ Alcotest.test_case "cover" `Quick test_chunk_cover;
          Alcotest.test_case "more parts than work" `Quick
            test_chunk_more_parts_than_work;
          Alcotest.test_case "empty" `Quick test_chunk_empty;
          Alcotest.test_case "chunk_of matches split" `Quick
            test_chunk_of_matches_split;
          Alcotest.test_case "invalid" `Quick test_chunk_invalid ] );
      ( "pool",
        [ Alcotest.test_case "parallel_for" `Quick test_pool_parallel_for;
          Alcotest.test_case "lane ids" `Quick test_pool_lane_ids;
          Alcotest.test_case "many regions" `Quick test_pool_many_regions;
          Alcotest.test_case "single lane" `Quick test_pool_single_lane;
          Alcotest.test_case "dynamic schedule" `Quick
            test_pool_dynamic_schedule;
          Alcotest.test_case "schedule parsing" `Quick test_schedule_parsing;
          Alcotest.test_case "dynamic matches static" `Quick
            test_exec_dynamic_matches_static;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "run_phases barrier" `Quick
            test_pool_run_phases_barrier;
          Alcotest.test_case "run_phases hook" `Quick
            test_pool_run_phases_on_phase;
          Alcotest.test_case "run_phases exception" `Quick
            test_pool_run_phases_exception;
          Alcotest.test_case "stop idempotent" `Quick
            test_pool_stop_idempotent ] );
      ( "fork_join",
        [ Alcotest.test_case "correct" `Quick test_fork_join_correct;
          Alcotest.test_case "region count" `Quick
            test_fork_join_region_count ] );
      ( "exec",
        [ Alcotest.test_case "parallel_for" `Quick test_exec_parallel_for;
          Alcotest.test_case "reduce max" `Quick test_exec_reduce_max;
          Alcotest.test_case "region counting" `Quick
            test_exec_region_counting;
          Alcotest.test_case "for_lanes coverage" `Quick
            test_exec_for_lanes_cover;
          Alcotest.test_case "for_lanes edge cases" `Quick
            test_exec_for_lanes_edges;
          Alcotest.test_case "bucket gc words" `Quick test_exec_bucket_words;
          Alcotest.test_case "parallel_phases" `Quick
            test_exec_parallel_phases;
          Alcotest.test_case "phase attribution" `Quick
            test_exec_phase_attribution;
          Alcotest.test_case "reduce lanes" `Quick test_exec_reduce_lanes;
          Alcotest.test_case "describe" `Quick test_exec_describe ] );
      ( "workspace",
        [ Alcotest.test_case "reuse" `Quick test_workspace_reuse;
          Alcotest.test_case "growth" `Quick test_workspace_growth;
          Alcotest.test_case "invalid" `Quick test_workspace_invalid;
          Alcotest.test_case "exec sizing" `Quick test_exec_workspace_sized;
          Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic ]
      );
      ( "cost_model",
        [ Alcotest.test_case "one core" `Quick test_model_one_core_no_overhead;
          Alcotest.test_case "spin scales" `Quick test_model_spin_scales;
          Alcotest.test_case "fork/join degrades" `Quick
            test_model_fork_join_degrades;
          Alcotest.test_case "speedup monotone" `Quick
            test_model_speedup_monotone_small;
          Alcotest.test_case "crossover" `Quick test_model_crossover;
          Alcotest.test_case "bandwidth cap" `Quick test_model_bandwidth_cap
        ] );
      ("properties", qcheck_cases) ]
