(* Tests for the engine layer: registry lookup, the shared driver's
   step accounting and instrumentation, cross-backend validation on
   the Sod tube, and the scheduler's per-region timing buckets. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-12))
let check_string = Alcotest.(check string)

let sod () = Euler.Setup.sod ~nx:64 ()

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_names () =
  Alcotest.(check (list string))
    "registered backends"
    [ "reference"; "array"; "fortran"; "fortran-outer"; "sacprog" ]
    (Engine.Registry.names ())

let test_registry_find () =
  List.iter
    (fun key ->
      check_bool key true (Option.is_some (Engine.Registry.find key)))
    (Engine.Registry.names ());
  check_bool "unknown is None" true
    (Option.is_none (Engine.Registry.find "cuda"));
  Alcotest.check_raises "find_exn reports the known names"
    (Invalid_argument
       "Engine.Registry: unknown backend \"cuda\" (have: reference, \
        array, fortran, fortran-outer, sacprog)")
    (fun () -> ignore (Engine.Registry.find_exn "cuda"))

let test_registry_rejects_bad_spec () =
  (* The mini-SaC program is 1D only. *)
  let prob2d = Euler.Setup.quadrant ~nx:8 () in
  check_bool "sacprog rejects 2D" true
    (try
       ignore (Engine.Registry.create "sacprog" prob2d);
       false
     with Invalid_argument _ -> true);
  (* The whole-array twin implements only the benchmark scheme. *)
  check_bool "array rejects WENO" true
    (try
       ignore
         (Engine.Registry.create ~config:Euler.Solver.default_config
            "array" (sod ()));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Shared driver                                                       *)
(* ------------------------------------------------------------------ *)

let test_run_steps_accounting () =
  let inst = Engine.Registry.create "reference" (sod ()) in
  let m = Engine.Run.run_steps inst 5 in
  check_int "steps" 5 m.Engine.Metrics.steps;
  check_bool "time advanced" true (m.Engine.Metrics.sim_time > 0.);
  (* The fused reference 1D step is one dispatch per RK stage; the dt
     eigenvalue rides in the final sweep, so only the first step pays
     a standalone GetDT region: 4 + 4 * 3 = 16 regions over 5 steps. *)
  check_int "regions" 16 m.Engine.Metrics.regions;
  check_int "regions matches exec" 16
    (Parallel.Exec.regions (Engine.Backend.exec inst));
  check_float "regions/step" 3.2 (Engine.Metrics.regions_per_step m)

let test_run_until_hits_target () =
  let inst = Engine.Registry.create "reference" (sod ()) in
  let m = Engine.Run.run_until inst 0.05 in
  check_float "exact target" 0.05 m.Engine.Metrics.sim_time;
  (* A second call is a no-op: the target is already reached. *)
  let m2 = Engine.Run.run_until inst 0.05 in
  check_int "no extra steps" m.Engine.Metrics.steps m2.Engine.Metrics.steps

let test_driver_equals_native_loop () =
  (* The engine's clamped loop must reproduce Solver.run_until
     exactly. *)
  let prob = sod () in
  let inst = Engine.Registry.create "reference" prob in
  ignore (Engine.Run.run_until inst 0.1);
  let solver =
    Euler.Solver.create ~config:Euler.Solver.benchmark_config
      ~bcs:prob.Euler.Setup.bcs
      (Euler.State.copy prob.Euler.Setup.state)
  in
  Euler.Solver.run_until solver 0.1;
  check_float "identical fields" 0.
    (Euler.State.max_abs_diff
       (Engine.Backend.state inst)
       solver.Euler.Solver.state)

let test_timing_buckets () =
  let inst = Engine.Registry.create "reference" (sod ()) in
  let m = Engine.Run.run_steps inst 4 in
  let bucket r =
    match Engine.Metrics.bucket m r with
    | Some b -> b
    | None ->
      Alcotest.failf "missing bucket %s" (Parallel.Exec.region_name r)
  in
  let rhs = bucket Parallel.Exec.Rhs in
  let bc = bucket Parallel.Exec.Bc in
  let reduce = bucket Parallel.Exec.Reduce in
  let rk = bucket Parallel.Exec.Rk_combine in
  check_int "3 rhs phases/step" 12 rhs.Parallel.Exec.count;
  check_int "3 bc fills/step" 12 bc.Parallel.Exec.count;
  (* Fused: the dt reduction is in-sweep after the first step, so only
     one standalone reduce appears over the whole run. *)
  check_int "reduce on first step only" 1 reduce.Parallel.Exec.count;
  check_int "3 rk combines/step" 12 rk.Parallel.Exec.count;
  List.iter
    (fun (b : Parallel.Exec.bucket) ->
      check_bool "time accumulated" true (b.total_ns >= 0.);
      check_bool "max <= total" true (b.max_ns <= b.total_ns +. 1e-6))
    [ rhs; bc; reduce; rk ]

(* ------------------------------------------------------------------ *)
(* Cross-backend validation                                            *)
(* ------------------------------------------------------------------ *)

let test_cross_check_native_backends () =
  List.iter
    (fun other ->
      let r = Engine.Validate.cross_check "reference" other (sod ()) in
      if not (Engine.Validate.within r 1e-8) then
        Alcotest.failf "reference vs %s diverged:\n%s" other
          (Engine.Validate.to_string r))
    [ "array"; "fortran"; "fortran-outer" ]

let test_cross_check_sacprog () =
  let r = Engine.Validate.cross_check "reference" "sacprog" (sod ()) in
  if not (Engine.Validate.within r 1e-6) then
    Alcotest.failf "reference vs sacprog diverged:\n%s"
      (Engine.Validate.to_string r)

let test_cross_check_report_shape () =
  let r = Engine.Validate.cross_check ~steps:3 "reference" "array" (sod ()) in
  check_int "steps recorded" 3 r.Engine.Validate.steps;
  Alcotest.(check (list string))
    "one divergence per conserved variable"
    [ "rho"; "rho*u"; "rho*v"; "E" ]
    (List.map
       (fun (d : Engine.Validate.divergence) -> d.Engine.Validate.var)
       r.Engine.Validate.divergences);
  List.iter
    (fun (d : Engine.Validate.divergence) ->
      check_bool "l1 <= max_abs" true
        (d.Engine.Validate.l1 <= d.Engine.Validate.max_abs +. 1e-30))
    r.Engine.Validate.divergences

(* ------------------------------------------------------------------ *)
(* Backend notes                                                       *)
(* ------------------------------------------------------------------ *)

let test_array_notes_with_loops () =
  let inst = Engine.Registry.create "array" (sod ()) in
  let m = Engine.Run.run_steps inst 2 in
  match List.assoc_opt "with-loops" m.Engine.Metrics.notes with
  | None -> Alcotest.fail "array backend should report with-loops"
  | Some n -> check_bool "counted some with-loops" true (n > 0.)

(* ------------------------------------------------------------------ *)
(* Cost model against measured instrumentation                         *)
(* ------------------------------------------------------------------ *)

let test_cost_model_tracks_measured_regions () =
  (* The cost model's regions_per_step input comes from Exec
     instrumentation; pin the whole coupling so neither side can
     silently drift.  Measured counts for the 2D benchmark scheme
     (RK3): fused = one dispatch per stage plus the first step's
     standalone GetDT ((1 + 3*4)/4 = 3.25 over 4 steps); unfused = 1
     reduce + 3 stages x (x-sweep + y-sweep + combine) = 10. *)
  let measure fused =
    let prob = Euler.Setup.two_channel ~cells_per_h:6 () in
    let s =
      Euler.Solver.create
        ~config:{ Euler.Solver.benchmark_config with Euler.Solver.fused }
        ~bcs:prob.Euler.Setup.bcs prob.Euler.Setup.state
    in
    Euler.Solver.run_steps s 4;
    Euler.Solver.regions_per_step s
  in
  let fused = measure true and unfused = measure false in
  check_float "measured fused regions/step" 3.25 fused;
  check_float "measured unfused regions/step" 10. unfused;
  check_bool "fused under the 4 regions/step ceiling" true (fused <= 4.);
  (* Feed both measurements to the model: the predicted per-step gap
     must be exactly the region-count gap times the per-region
     overhead — the folding win is pure synchronisation savings. *)
  let open Parallel.Cost_model in
  let w regions_per_step =
    { serial_s = 1e-4; parallel_s = 1e-2; regions_per_step }
  in
  List.iter
    (fun (name, sched, cores) ->
      let gap =
        predict_step default sched (w unfused) ~cores
        -. predict_step default sched (w fused) ~cores
      in
      let expected =
        (unfused -. fused) *. overhead_per_region default sched ~cores
      in
      Alcotest.(check (float 1e-9))
        (name ^ ": predicted gap = region gap x overhead")
        expected gap)
    [ ("spin@4", Spin_barrier, 4);
      ("fork@4", Os_fork_join, 4);
      ("spin@16", Spin_barrier, 16) ]

(* ------------------------------------------------------------------ *)
(* Reduce clamp (satellite: fork/join with lanes > range)              *)
(* ------------------------------------------------------------------ *)

let test_fork_join_reduce_short_range () =
  let exec = Parallel.Exec.fork_join ~lanes:8 in
  let m =
    Parallel.Exec.parallel_reduce_max exec ~lo:0 ~hi:3 (fun i ->
        float_of_int (10 - i))
  in
  check_float "max over short range" 10. m;
  check_float "empty range" neg_infinity
    (Parallel.Exec.parallel_reduce_max exec ~lo:0 ~hi:0 (fun _ -> 1.))

(* ------------------------------------------------------------------ *)
(* Checkpoint / restart                                                *)
(* ------------------------------------------------------------------ *)

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "engine-ckpt-%d-%d" (Unix.getpid ())
         (Random.int 1_000_000))
  in
  Persist.Checkpoint.mkdir_p dir;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun e -> Sys.remove (Filename.concat dir e))
           (Sys.readdir dir);
         Sys.rmdir dir
       with Sys_error _ -> ()))
    (fun () -> f dir)

(* Bitwise state equality: zero max |difference| in every conserved
   variable, not a tolerance. *)
let check_states_identical label a b =
  List.iter
    (fun (d : Engine.Validate.divergence) ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "%s: %s identical" label d.Engine.Validate.var)
        0. d.Engine.Validate.max_abs)
    (Engine.Validate.divergences a b)

let check_dts_identical label a b =
  check_int (label ^ ": same step count") (List.length a) (List.length b);
  List.iteri
    (fun i (x, y) ->
      check_bool
        (Printf.sprintf "%s: dt[%d] bitwise" label i)
        true
        (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)))
    (List.combine a b)

let march inst n =
  List.init n (fun _ -> Engine.Backend.step inst)

(* The acceptance criterion of the subsystem: checkpoint at step [n1],
   resume (through a full encode/decode of the binary format), march
   to [n1 + n2] — every dt and every conserved value must equal the
   uninterrupted run's, bitwise. *)
let check_resume_bitwise ?(label = "") ~mk_exec ?fused ~config ~problem n1 n2
    backend =
  let label = if label = "" then backend else label ^ "/" ^ backend in
  let execs = ref [] in
  let exec () =
    let e = mk_exec () in
    execs := e :: !execs;
    e
  in
  Fun.protect
    ~finally:(fun () -> List.iter Parallel.Exec.shutdown !execs)
    (fun () ->
      let uninterrupted =
        Engine.Registry.create ~exec:(exec ()) ~config backend (problem ())
      in
      let dts_a = march uninterrupted (n1 + n2) in
      let first =
        Engine.Registry.create ~exec:(exec ()) ~config backend (problem ())
      in
      let dts_b1 = march first n1 in
      let snap =
        Persist.Snapshot.decode
          (Persist.Snapshot.encode (Engine.Backend.snapshot first))
      in
      check_int (label ^ ": snapshot steps") n1 snap.Persist.Snapshot.steps;
      let resumed = Engine.Registry.resume ~exec:(exec ()) ?fused snap (problem ()) in
      check_int (label ^ ": resumed steps") n1 (Engine.Backend.steps resumed);
      check_states_identical (label ^ " at n1") (Engine.Backend.state first)
        (Engine.Backend.state resumed);
      let dts_b2 = march resumed n2 in
      check_dts_identical label dts_a (dts_b1 @ dts_b2);
      check_states_identical label
        (Engine.Backend.state uninterrupted)
        (Engine.Backend.state resumed);
      (* The continuations' snapshots are byte-identical too. *)
      check_string (label ^ ": snapshots byte-identical")
        (Persist.Snapshot.encode (Engine.Backend.snapshot uninterrupted))
        (Persist.Snapshot.encode (Engine.Backend.snapshot resumed)))

let seq () = Parallel.Exec.sequential ()

let test_resume_bitwise_all_backends () =
  List.iter
    (check_resume_bitwise ~mk_exec:seq
       ~config:Euler.Solver.benchmark_config
       ~problem:(fun () -> Euler.Setup.sod ~nx:32 ())
       6 6)
    (Engine.Registry.names ());
  (* 2D coverage for the backends that support it. *)
  List.iter
    (check_resume_bitwise ~label:"2d" ~mk_exec:seq
       ~config:Euler.Solver.benchmark_config
       ~problem:(fun () -> Euler.Setup.quadrant ~nx:8 ())
       4 4)
    [ "reference"; "array"; "fortran"; "fortran-outer" ]

let test_resume_bitwise_schedulers () =
  List.iter
    (fun (label, mk_exec) ->
      List.iter
        (fun fused ->
          check_resume_bitwise
            ~label:(Printf.sprintf "%s/%s" label
                      (if fused then "fused" else "unfused"))
            ~mk_exec ~fused
            ~config:
              { Euler.Solver.benchmark_config with Euler.Solver.fused }
            ~problem:(fun () -> Euler.Setup.sod ~nx:32 ())
            5 5 "reference")
        [ true; false ])
    [ ("seq", seq);
      ("spmd", fun () -> Parallel.Exec.spmd ~lanes:2);
      ("forkjoin", fun () -> Parallel.Exec.fork_join ~lanes:2) ]

let test_resume_bitwise_scheme_matrix () =
  List.iter
    (fun (label, config) ->
      check_resume_bitwise ~label ~mk_exec:seq ~config
        ~problem:(fun () -> Euler.Setup.sod ~nx:32 ())
        5 5 "reference")
    [ ("weno3-hllc-rk3", Euler.Solver.default_config);
      ( "weno5-roe-rk2",
        { Euler.Solver.default_config with
          Euler.Solver.recon = Euler.Recon.Weno5;
          riemann = Euler.Riemann.Roe;
          rk = Euler.Rk.Tvd_rk2 } );
      ( "tvd2-hll-euler1",
        { Euler.Solver.default_config with
          Euler.Solver.recon = Euler.Recon.Tvd2 Euler.Limiter.Minmod;
          riemann = Euler.Riemann.Hll;
          rk = Euler.Rk.Euler1 } ) ]

let test_resume_cross_tiling () =
  (* Tiled runs snapshot through a gather to the monolithic format, so
     checkpoints cross the decomposition boundary in both directions:
     a monolithic checkpoint resumes under tiling and vice versa, and
     every continuation equals the uninterrupted monolithic run
     bitwise — dt sequence, state and re-snapshot alike. *)
  let problem () = Euler.Setup.quadrant ~nx:12 () in
  let config tiles =
    { Euler.Solver.benchmark_config with Euler.Solver.tiles }
  in
  let start tiles =
    Engine.Registry.create ~config:(config tiles) "reference" (problem ())
  in
  let uninterrupted = start (1, 1) in
  let dts_a = march uninterrupted 8 in
  List.iter
    (fun (label, t1, t2) ->
      let first = start t1 in
      let dts_b1 = march first 4 in
      let snap =
        Persist.Snapshot.decode
          (Persist.Snapshot.encode (Engine.Backend.snapshot first))
      in
      let resumed = Engine.Registry.resume ~tiles:t2 snap (problem ()) in
      check_states_identical (label ^ " at n1") (Engine.Backend.state first)
        (Engine.Backend.state resumed);
      let dts_b2 = march resumed 4 in
      check_dts_identical label dts_a (dts_b1 @ dts_b2);
      check_states_identical label
        (Engine.Backend.state uninterrupted)
        (Engine.Backend.state resumed);
      check_string (label ^ ": snapshots byte-identical")
        (Persist.Snapshot.encode (Engine.Backend.snapshot uninterrupted))
        (Persist.Snapshot.encode (Engine.Backend.snapshot resumed)))
    [ ("mono->tiled", (1, 1), (2, 2));
      ("tiled->mono", (2, 2), (1, 1));
      ("tiled->tiled-uneven", (2, 2), (3, 2)) ]

let test_resume_rejects_mismatch () =
  let snap =
    let inst =
      Engine.Registry.create ~config:Euler.Solver.benchmark_config
        "reference" (Euler.Setup.sod ~nx:32 ())
    in
    ignore (march inst 3);
    Engine.Backend.snapshot inst
  in
  let expect_mismatch name f =
    match f () with
    | _ -> Alcotest.failf "%s: resumed instead of raising Mismatch" name
    | exception Persist.Snapshot.Mismatch msg ->
      check_bool (name ^ " diagnostic") true (String.length msg > 0)
  in
  expect_mismatch "wrong grid" (fun () ->
      Engine.Registry.resume snap (Euler.Setup.sod ~nx:16 ()));
  expect_mismatch "wrong gamma" (fun () ->
      Engine.Registry.resume snap (Euler.Setup.sod ~gamma:1.67 ~nx:32 ()));
  expect_mismatch "wrong scheme" (fun () ->
      Engine.Backend.restore
        (Engine.Registry.find_exn "reference")
        (Engine.Backend.spec ~config:Euler.Solver.default_config
           (Euler.Setup.sod ~nx:32 ()))
        snap);
  expect_mismatch "wrong backend" (fun () ->
      Engine.Backend.restore
        (Engine.Registry.find_exn "array")
        (Engine.Backend.spec ~config:Euler.Solver.benchmark_config
           (Euler.Setup.sod ~nx:32 ()))
        snap)

let test_autosave_cadence_and_retention () =
  with_tmpdir (fun dir ->
      let inst =
        Engine.Registry.create ~config:Euler.Solver.benchmark_config
          "reference" (sod ())
      in
      let m =
        Engine.Run.run_steps
          ~autosave:(Engine.Run.autosave ~every_steps:2 ~retain:3 dir)
          inst 10
      in
      check_int "five snapshots written" 5 m.Engine.Metrics.checkpoints;
      Alcotest.(check (list int)) "newest three retained" [ 6; 8; 10 ]
        (List.map fst (Persist.Checkpoint.list dir));
      check_bool "bytes accounted" true
        (m.Engine.Metrics.checkpoint_bytes > 0);
      check_bool "payload fraction sane" true
        (let f = Engine.Metrics.checkpoint_payload_fraction m in
         f > 0.5 && f < 1.);
      check_bool "checkpoint wall accounted" true
        (Engine.Metrics.ms_per_checkpoint m >= 0.);
      (* The newest checkpoint IS the live state. *)
      match Engine.Registry.resume_latest ~dir (sod ()) with
      | None -> Alcotest.fail "expected a resumable checkpoint"
      | Some (_, resumed) ->
        check_int "resumed at 10" 10 (Engine.Backend.steps resumed);
        check_states_identical "autosave tail"
          (Engine.Backend.state inst)
          (Engine.Backend.state resumed))

(* Crash simulation: the newest checkpoint is torn mid-write; resume
   must fall back to the previous retained one and still reach the
   uninterrupted end state bitwise. *)
let test_crash_falls_back_to_retained () =
  with_tmpdir (fun dir ->
      let uninterrupted =
        Engine.Registry.create ~config:Euler.Solver.benchmark_config
          "reference" (sod ())
      in
      ignore (march uninterrupted 10);
      let crashed =
        Engine.Registry.create ~config:Euler.Solver.benchmark_config
          "reference" (sod ())
      in
      ignore
        (Engine.Run.run_steps
           ~autosave:(Engine.Run.autosave ~every_steps:2 ~retain:3 dir)
           crashed 10);
      let newest = Filename.concat dir (Persist.Checkpoint.file_name ~steps:10) in
      let bytes = In_channel.with_open_bin newest In_channel.input_all in
      Out_channel.with_open_bin newest (fun oc ->
          Out_channel.output_string oc
            (String.sub bytes 0 (String.length bytes - 7)));
      match Engine.Registry.resume_latest ~dir (sod ()) with
      | None -> Alcotest.fail "expected fallback to an intact checkpoint"
      | Some (path, resumed) ->
        check_string "fell back to step 8"
          (Filename.concat dir (Persist.Checkpoint.file_name ~steps:8))
          path;
        check_int "resumed at 8" 8 (Engine.Backend.steps resumed);
        ignore (march resumed 2);
        check_states_identical "crash recovery"
          (Engine.Backend.state uninterrupted)
          (Engine.Backend.state resumed))

(* dune runtest runs from _build/default/test, where the committed
   store is staged by the (deps (glob_files golden/*.swck)) stanza;
   `dune exec test/test_engine.exe` runs from the repo root. *)
let golden_root =
  if Sys.file_exists "golden" then "golden" else "test/golden"

let test_golden_suite_matrix_shape () =
  let entries = Engine.Golden_suite.all in
  check_bool "matrix covers every backend" true
    (List.for_all
       (fun b ->
         List.exists (fun (e : Engine.Golden_suite.entry) -> e.backend = b)
           entries)
       (Engine.Registry.names ()));
  (* Keys are unique and filesystem-safe. *)
  let keys = List.map Engine.Golden_suite.key entries in
  check_int "keys unique" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  List.iter
    (fun k ->
      check_bool (k ^ " is a safe basename") true
        (not (String.contains k '/') && not (String.contains k ':')))
    keys

let test_golden_suite_against_committed () =
  List.iter
    (fun ((e : Engine.Golden_suite.entry), r) ->
      let name =
        Printf.sprintf "%s %s" e.Engine.Golden_suite.backend
          e.Engine.Golden_suite.label
      in
      match r with
      | Engine.Golden_suite.Pass _ -> ()
      | Engine.Golden_suite.Missing ->
        Alcotest.failf "%s: golden missing (run scripts/bless_golden.sh)"
          name
      | Engine.Golden_suite.Fail rep ->
        Alcotest.failf "%s: diverged from blessed state\n%s" name
          (Engine.Validate.to_string rep))
    (Engine.Golden_suite.check_all ~root:golden_root ())

(* ------------------------------------------------------------------ *)
(* Scenario registry                                                   *)
(* ------------------------------------------------------------------ *)

let test_scenario_names () =
  let names = Engine.Scenario.names () in
  check_int "ten scenarios" 10 (List.length names);
  List.iter
    (fun n -> check_bool (n ^ " registered") true (List.mem n names))
    [ "sod"; "lax"; "123"; "pulse"; "shu-osher"; "blast"; "uniform";
      "quadrant"; "two-channel"; "dmr" ];
  (* 1D cases enumerate before 2D ones. *)
  let ds =
    List.map
      (fun s -> s.Engine.Scenario.dims)
      (Engine.Scenario.all ())
  in
  check_bool "1d first" true
    (ds = List.sort compare ds);
  check_bool "lookup is case-insensitive" true
    (Option.is_some (Engine.Scenario.find "Sod"));
  check_bool "unknown is None" true
    (Option.is_none (Engine.Scenario.find "kelvin-helmholtz"));
  Alcotest.check_raises "find_exn lists the known names"
    (Invalid_argument
       (Printf.sprintf "Engine.Scenario: unknown scenario \"x\" (have: %s)"
          (String.concat ", " names)))
    (fun () -> ignore (Engine.Scenario.find_exn "x"))

let test_scenario_problem_validation () =
  let dmr = Engine.Scenario.find_exn "dmr" in
  check_bool "dmr rejects nx not divisible by 4" true
    (try
       ignore (Engine.Scenario.problem ~nx:50 dmr);
       false
     with Invalid_argument _ -> true);
  let prob = Engine.Scenario.golden_problem dmr in
  let g = prob.Euler.Setup.state.Euler.State.grid in
  check_int "dmr golden aspect" g.Euler.Grid.nx (4 * g.Euler.Grid.ny);
  (* Every scenario instantiates at its registered defaults. *)
  List.iter
    (fun s -> ignore (Engine.Scenario.problem s))
    (Engine.Scenario.all ())

(* ------------------------------------------------------------------ *)
(* Failure injection: near-vacuum and extreme-pressure scenarios       *)
(* ------------------------------------------------------------------ *)

(* The Einfeldt 123 tube pulls the centre toward vacuum; the blast
   wave carries a 1e5 pressure ratio.  Both are where naive solvers
   emit NaNs — every backend must march them to finite states. *)
let test_failure_injection () =
  List.iter
    (fun name ->
      let s = Engine.Scenario.find_exn name in
      List.iter
        (fun backend ->
          let inst =
            Engine.Registry.create
              ~config:(Engine.Scenario.config s)
              backend
              (Engine.Scenario.golden_problem s)
          in
          ignore (Engine.Run.run_steps inst s.Engine.Scenario.golden_steps);
          let st = Engine.Backend.state inst in
          let label = Printf.sprintf "%s on %s" name backend in
          Array.iteri
            (fun k comp ->
              Array.iter
                (fun v ->
                  if not (Float.is_finite v) then
                    Alcotest.failf "%s: non-finite in component %d" label k)
                comp)
            st.Euler.State.q;
          check_bool (label ^ " keeps density positive") true
            (Euler.State.min_density st > 0.);
          check_bool (label ^ " keeps pressure positive") true
            (Euler.State.min_pressure st > 0.))
        (Engine.Registry.names ()))
    [ "123"; "blast" ]

(* ------------------------------------------------------------------ *)
(* Convergence                                                         *)
(* ------------------------------------------------------------------ *)

(* Grid-refinement slopes on the smooth pulse must sit between an
   empirical floor (limiting and WENO weight adaptation cost accuracy
   at extrema; first-order diffusion erodes the pulse) and the formal
   order plus measurement slack.  The short horizon keeps even the
   first-order scheme in its asymptotic range. *)
let test_pulse_refinement_orders () =
  let pulse = Engine.Scenario.find_exn "pulse" in
  List.iter
    (fun (recon, riemann, floor) ->
      let config =
        { Euler.Solver.default_config with Euler.Solver.recon; riemann }
      in
      let st =
        Engine.Convergence.self_study ~t:0.05 pulse ~config [ 40; 80; 160 ]
      in
      let name = st.Engine.Convergence.scheme in
      check_bool (name ^ " errors shrink monotonically") true
        (Engine.Convergence.monotone st.Engine.Convergence.samples);
      if st.Engine.Convergence.order < floor then
        Alcotest.failf "%s: observed order %.2f below floor %.2f" name
          st.Engine.Convergence.order floor;
      if st.Engine.Convergence.order > st.Engine.Convergence.nominal +. 1.
      then
        Alcotest.failf "%s: observed order %.2f implausibly above nominal %.1f"
          name st.Engine.Convergence.order st.Engine.Convergence.nominal)
    [ (Euler.Recon.Piecewise_constant, Euler.Riemann.Rusanov, 0.6);
      (Euler.Recon.Tvd2 Euler.Limiter.Minmod, Euler.Riemann.Hllc, 1.3);
      (Euler.Recon.Weno3, Euler.Riemann.Hllc, 2.5);
      (Euler.Recon.Weno5, Euler.Riemann.Hllc, 1.6) ]

let test_sod_l1_monotone () =
  let sod = Engine.Scenario.find_exn "sod" in
  let st =
    Engine.Convergence.exact_study sod
      ~config:(Engine.Scenario.config sod)
      [ 40; 80; 160 ]
  in
  check_bool "L1 vs exact Riemann decreases under refinement" true
    (Engine.Convergence.monotone st.Engine.Convergence.samples);
  check_bool "slope is positive" true (st.Engine.Convergence.order > 0.)

let () =
  Alcotest.run "engine"
    [ ( "registry",
        [ Alcotest.test_case "names" `Quick test_registry_names;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "bad specs" `Quick
            test_registry_rejects_bad_spec ] );
      ( "driver",
        [ Alcotest.test_case "run_steps accounting" `Quick
            test_run_steps_accounting;
          Alcotest.test_case "run_until target" `Quick
            test_run_until_hits_target;
          Alcotest.test_case "matches native loop" `Quick
            test_driver_equals_native_loop;
          Alcotest.test_case "timing buckets" `Quick test_timing_buckets ] );
      ( "validate",
        [ Alcotest.test_case "native backends" `Slow
            test_cross_check_native_backends;
          Alcotest.test_case "sacprog" `Slow test_cross_check_sacprog;
          Alcotest.test_case "report shape" `Quick
            test_cross_check_report_shape ] );
      ( "metrics",
        [ Alcotest.test_case "array with-loops" `Quick
            test_array_notes_with_loops ] );
      ( "exec",
        [ Alcotest.test_case "fork/join short reduce" `Quick
            test_fork_join_reduce_short_range ] );
      ( "cost_model",
        [ Alcotest.test_case "tracks measured regions" `Quick
            test_cost_model_tracks_measured_regions ] );
      ( "resume",
        [ Alcotest.test_case "bitwise across backends" `Quick
            test_resume_bitwise_all_backends;
          Alcotest.test_case "bitwise across schedulers" `Slow
            test_resume_bitwise_schedulers;
          Alcotest.test_case "bitwise across schemes" `Quick
            test_resume_bitwise_scheme_matrix;
          Alcotest.test_case "bitwise across decompositions" `Quick
            test_resume_cross_tiling;
          Alcotest.test_case "mismatch rejected" `Quick
            test_resume_rejects_mismatch ] );
      ( "autosave",
        [ Alcotest.test_case "cadence and retention" `Quick
            test_autosave_cadence_and_retention;
          Alcotest.test_case "crash falls back" `Quick
            test_crash_falls_back_to_retained ] );
      ( "scenario",
        [ Alcotest.test_case "names" `Quick test_scenario_names;
          Alcotest.test_case "problem validation" `Quick
            test_scenario_problem_validation ] );
      ( "failure injection",
        [ Alcotest.test_case "123 and blast stay finite" `Slow
            test_failure_injection ] );
      ( "convergence",
        [ Alcotest.test_case "pulse refinement orders" `Slow
            test_pulse_refinement_orders;
          Alcotest.test_case "sod L1 monotone" `Slow
            test_sod_l1_monotone ] );
      ( "golden",
        [ Alcotest.test_case "matrix shape" `Quick
            test_golden_suite_matrix_shape;
          Alcotest.test_case "against committed store" `Slow
            test_golden_suite_against_committed ] ) ]
