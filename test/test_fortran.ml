(* Tests for the Fortran-90-style baseline: storage layout, kernel
   behaviour, autopar granularities, and equivalence with the clean
   OCaml solver. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let seq () = Parallel.Exec.sequential ()

(* ------------------------------------------------------------------ *)
(* Storage                                                             *)
(* ------------------------------------------------------------------ *)

let test_storage_roundtrip () =
  let prob = Euler.Setup.sod ~nx:20 () in
  let before = Euler.State.copy prob.Euler.Setup.state in
  let s = Fortran_baseline.Storage.of_state prob.Euler.Setup.state in
  let back = Fortran_baseline.Storage.to_state s in
  check_float "state copies exactly" 0. (Euler.State.max_abs_diff before back)

let test_storage_qp_order () =
  (* QP ordering matches the paper's GetDT listing: Ux, Uy, Pc, Rc. *)
  check_int "ux" 0 Fortran_baseline.Storage.i_ux;
  check_int "uy" 1 Fortran_baseline.Storage.i_uy;
  check_int "pc" 2 Fortran_baseline.Storage.i_pc;
  check_int "rc" 3 Fortran_baseline.Storage.i_rc

(* ------------------------------------------------------------------ *)
(* GetDT                                                               *)
(* ------------------------------------------------------------------ *)

let test_getdt_matches_reference () =
  let prob = Euler.Setup.two_channel ~cells_per_h:6 () in
  let expected =
    Euler.Time_step.dt ~cfl:0.5 (seq ()) prob.Euler.Setup.state
  in
  let f = Fortran_baseline.F_solver.of_problem prob in
  check_float "GetDT agrees" expected
    (Fortran_baseline.F_solver.get_dt f (seq ()))

let test_getdt_1d () =
  let prob = Euler.Setup.sod ~nx:50 () in
  let expected = Euler.Time_step.dt ~cfl:0.5 (seq ()) prob.Euler.Setup.state in
  let f = Fortran_baseline.F_solver.of_problem prob in
  check_float "1D GetDT agrees" expected
    (Fortran_baseline.F_solver.get_dt f (seq ()))

(* ------------------------------------------------------------------ *)
(* Equivalence with the reference solver                               *)
(* ------------------------------------------------------------------ *)

let equivalence_run ~autopar ~steps prob_f =
  let p1 = prob_f () in
  let reference =
    Euler.Solver.create ~config:Euler.Solver.benchmark_config
      ~bcs:p1.Euler.Setup.bcs p1.Euler.Setup.state
  in
  Euler.Solver.run_steps reference steps;
  let p2 = prob_f () in
  let f = Fortran_baseline.F_solver.of_problem ~autopar p2 in
  Fortran_baseline.F_solver.run_steps f (seq ()) steps;
  ( Euler.State.max_abs_diff reference.Euler.Solver.state
      (Fortran_baseline.F_solver.state f),
    reference.Euler.Solver.time,
    f.Fortran_baseline.F_solver.time )

let test_equiv_sod () =
  let diff, t1, t2 =
    equivalence_run ~autopar:Fortran_baseline.F_solver.Inner ~steps:50
      (fun () -> Euler.Setup.sod ~nx:80 ())
  in
  check_bool "1D equivalent" true (diff < 1e-11);
  check_float "same time" t1 t2

let test_equiv_two_channel () =
  let diff, _, _ =
    equivalence_run ~autopar:Fortran_baseline.F_solver.Inner ~steps:25
      (fun () -> Euler.Setup.two_channel ~cells_per_h:8 ())
  in
  check_bool "2D equivalent" true (diff < 1e-10)

let test_equiv_lax () =
  let diff, _, _ =
    equivalence_run ~autopar:Fortran_baseline.F_solver.Outer ~steps:40
      (fun () -> Euler.Setup.lax ~nx:60 ())
  in
  check_bool "Lax equivalent" true (diff < 1e-11)

let test_autopar_granularities_agree () =
  (* Inner and Outer schedules are just different parallelisations of
     the same loops: identical results, different region counts. *)
  let run autopar =
    let p = Euler.Setup.two_channel ~cells_per_h:6 () in
    let f = Fortran_baseline.F_solver.of_problem ~autopar p in
    let exec = seq () in
    Fortran_baseline.F_solver.run_steps f exec 10;
    (Fortran_baseline.F_solver.state f, Parallel.Exec.regions exec)
  in
  let st_inner, regions_inner = run Fortran_baseline.F_solver.Inner in
  let st_outer, regions_outer = run Fortran_baseline.F_solver.Outer in
  check_float "identical fields" 0.
    (Euler.State.max_abs_diff st_inner st_outer);
  check_bool "inner creates many more regions" true
    (regions_inner > 5 * regions_outer)

let test_parallel_backends_agree () =
  (* Running the baseline through real SPMD and fork/join backends
     changes nothing numerically. *)
  let run exec =
    let p = Euler.Setup.sod ~nx:40 () in
    let f =
      Fortran_baseline.F_solver.of_problem
        ~autopar:Fortran_baseline.F_solver.Outer p
    in
    Fortran_baseline.F_solver.run_steps f exec 15;
    Parallel.Exec.shutdown exec;
    Fortran_baseline.F_solver.state f
  in
  let a = run (seq ()) in
  let b = run (Parallel.Exec.spmd ~lanes:2) in
  let c = run (Parallel.Exec.fork_join ~lanes:2) in
  check_float "spmd equals seq" 0. (Euler.State.max_abs_diff a b);
  check_float "fork/join equals seq" 0. (Euler.State.max_abs_diff a c)

let test_equiv_full_menu () =
  (* The baseline accepts the complete scheme menu; each combination
     must match the reference solver on a short Sod run. *)
  List.iter
    (fun (recon, riemann) ->
      let config =
        { Euler.Solver.recon;
          riemann;
          rk = Euler.Rk.Tvd_rk3;
          cfl = 0.4;
          fused = true;
          tiles = (1, 1) }
      in
      let p1 = Euler.Setup.sod ~nx:50 () in
      let reference =
        Euler.Solver.create ~config ~bcs:p1.Euler.Setup.bcs
          p1.Euler.Setup.state
      in
      Euler.Solver.run_steps reference 20;
      let p2 = Euler.Setup.sod ~nx:50 () in
      let f = Fortran_baseline.F_solver.of_problem ~config ~cfl:0.4 p2 in
      Fortran_baseline.F_solver.run_steps f (seq ()) 20;
      let name =
        Euler.Recon.name recon ^ "+" ^ Euler.Riemann.name riemann
      in
      check_bool (name ^ " equivalent") true
        (Euler.State.max_abs_diff reference.Euler.Solver.state
           (Fortran_baseline.F_solver.state f)
         < 1e-10))
    [ (Euler.Recon.Weno3, Euler.Riemann.Hllc);
      (Euler.Recon.Weno5, Euler.Riemann.Hll);
      (Euler.Recon.Tvd2 Euler.Limiter.Van_leer, Euler.Riemann.Roe);
      (Euler.Recon.Tvd3 Euler.Limiter.Minmod, Euler.Riemann.Rusanov) ]

let test_equiv_weno_2d () =
  let config = Euler.Solver.default_config in
  let p1 = Euler.Setup.two_channel ~cells_per_h:6 () in
  let reference =
    Euler.Solver.create ~config ~bcs:p1.Euler.Setup.bcs
      p1.Euler.Setup.state
  in
  Euler.Solver.run_steps reference 12;
  let p2 = Euler.Setup.two_channel ~cells_per_h:6 () in
  let f = Fortran_baseline.F_solver.of_problem ~config p2 in
  Fortran_baseline.F_solver.run_steps f (seq ()) 12;
  check_bool "WENO3+HLLC 2D equivalent" true
    (Euler.State.max_abs_diff reference.Euler.Solver.state
       (Fortran_baseline.F_solver.state f)
     < 1e-10)

let test_rk2_supported () =
  let config =
    { Euler.Solver.benchmark_config with Euler.Solver.rk = Euler.Rk.Tvd_rk2 }
  in
  let p1 = Euler.Setup.sod ~nx:40 () in
  let reference =
    Euler.Solver.create ~config ~bcs:p1.Euler.Setup.bcs p1.Euler.Setup.state
  in
  Euler.Solver.run_steps reference 15;
  let p2 = Euler.Setup.sod ~nx:40 () in
  let f = Fortran_baseline.F_solver.of_problem ~config p2 in
  Fortran_baseline.F_solver.run_steps f (seq ()) 15;
  check_bool "RK2 equivalent" true
    (Euler.State.max_abs_diff reference.Euler.Solver.state
       (Fortran_baseline.F_solver.state f)
     < 1e-11)

let test_conservation () =
  let p = Euler.Setup.sod ~nx:60 () in
  let f = Fortran_baseline.F_solver.of_problem p in
  let m0 = Euler.State.total_mass (Fortran_baseline.F_solver.state f) in
  Fortran_baseline.F_solver.run_steps f (seq ()) 30;
  check_float "mass conserved" m0
    (Euler.State.total_mass (Fortran_baseline.F_solver.state f))

let test_autopar_names () =
  Alcotest.(check string) "inner" "inner"
    (Fortran_baseline.F_solver.autopar_name Fortran_baseline.F_solver.Inner);
  Alcotest.(check string) "outer" "outer"
    (Fortran_baseline.F_solver.autopar_name Fortran_baseline.F_solver.Outer)

let () =
  Alcotest.run "fortran_baseline"
    [ ( "storage",
        [ Alcotest.test_case "roundtrip" `Quick test_storage_roundtrip;
          Alcotest.test_case "QP ordering" `Quick test_storage_qp_order ] );
      ( "getdt",
        [ Alcotest.test_case "matches reference 2D" `Quick
            test_getdt_matches_reference;
          Alcotest.test_case "matches reference 1D" `Quick test_getdt_1d ] );
      ( "equivalence",
        [ Alcotest.test_case "sod" `Quick test_equiv_sod;
          Alcotest.test_case "two-channel" `Quick test_equiv_two_channel;
          Alcotest.test_case "lax" `Quick test_equiv_lax;
          Alcotest.test_case "granularities agree" `Quick
            test_autopar_granularities_agree;
          Alcotest.test_case "parallel backends agree" `Quick
            test_parallel_backends_agree;
          Alcotest.test_case "full scheme menu" `Quick test_equiv_full_menu;
          Alcotest.test_case "weno 2d" `Quick test_equiv_weno_2d;
          Alcotest.test_case "rk2" `Quick test_rk2_supported;
          Alcotest.test_case "conservation" `Quick test_conservation;
          Alcotest.test_case "autopar names" `Quick test_autopar_names ] ) ]
