(* End-to-end integration tests: the three implementations against
   each other, the mini-SaC port against the native solver, and the
   full measurement-to-prediction chain behind Fig. 4. *)

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Three-way equivalence                                               *)
(* ------------------------------------------------------------------ *)

let three_way ~steps prob_f =
  let p1 = prob_f () in
  let fused =
    Euler.Solver.create ~config:Euler.Solver.benchmark_config
      ~bcs:p1.Euler.Setup.bcs p1.Euler.Setup.state
  in
  Euler.Solver.run_steps fused steps;
  let p2 = prob_f () in
  let arr = Euler.Array_style.create ~bcs:p2.Euler.Setup.bcs p2.Euler.Setup.state in
  Euler.Array_style.run_steps arr steps;
  let p3 = prob_f () in
  let ftn = Fortran_baseline.F_solver.of_problem p3 in
  Fortran_baseline.F_solver.run_steps ftn (Parallel.Exec.sequential ()) steps;
  ( fused.Euler.Solver.state,
    Euler.Array_style.state arr,
    Fortran_baseline.F_solver.state ftn )

let test_three_way_1d () =
  let a, b, c = three_way ~steps:60 (fun () -> Euler.Setup.sod ~nx:100 ()) in
  check_bool "fused = array-style" true (Euler.State.max_abs_diff a b < 1e-11);
  check_bool "fused = fortran" true (Euler.State.max_abs_diff a c < 1e-11)

let test_three_way_2d () =
  let a, b, c =
    three_way ~steps:30 (fun () -> Euler.Setup.two_channel ~cells_per_h:10 ())
  in
  check_bool "fused = array-style (2D)" true
    (Euler.State.max_abs_diff a b < 1e-10);
  check_bool "fused = fortran (2D)" true
    (Euler.State.max_abs_diff a c < 1e-10)

(* ------------------------------------------------------------------ *)
(* Mini-SaC port vs native                                             *)
(* ------------------------------------------------------------------ *)

let test_sacprog_unoptimised () =
  let c = Sacprog.Runner.compile_euler_1d ~options:Sac.Pipeline.o0 () in
  let _, q = Sacprog.Runner.sod_state c ~nx:40 ~steps:25 in
  let native = Sacprog.Runner.native_sod_state ~nx:40 ~steps:25 in
  check_bool "O0 port matches native" true
    (Sacprog.Runner.max_abs_diff q native < 1e-12)

let test_sacprog_optimised () =
  let c = Sacprog.Runner.compile_euler_1d () in
  let stats, q = Sacprog.Runner.sod_state c ~nx:40 ~steps:25 in
  let native = Sacprog.Runner.native_sod_state ~nx:40 ~steps:25 in
  check_bool "O3 port matches native" true
    (Sacprog.Runner.max_abs_diff q native < 1e-12);
  (* Optimisation must reduce the with-loop traffic. *)
  let c0 = Sacprog.Runner.compile_euler_1d ~options:Sac.Pipeline.o0 () in
  let stats0, _ = Sacprog.Runner.sod_state c0 ~nx:40 ~steps:25 in
  check_bool "fewer with-loops after -O3" true
    (stats.Sac.Eval.with_loops < stats0.Sac.Eval.with_loops);
  check_bool "fewer elements after -O3" true
    (stats.Sac.Eval.elements < stats0.Sac.Eval.elements)

let test_sacprog_parallel_eval () =
  let c = Sacprog.Runner.compile_euler_1d () in
  let exec = Parallel.Exec.spmd ~lanes:2 in
  let _, q_par = Sacprog.Runner.sod_state ~exec c ~nx:40 ~steps:10 in
  Parallel.Exec.shutdown exec;
  let _, q_seq = Sacprog.Runner.sod_state c ~nx:40 ~steps:10 in
  check_float "parallel evaluation identical" 0.
    (Sacprog.Runner.max_abs_diff q_par q_seq)

let test_sacprog_2d_quadrant () =
  (* The 2D port: quadrant problem, mini-SaC vs native, both
     unoptimised and through the full pipeline. *)
  let native = Sacprog.Runner.native_quadrant_state ~n:10 ~steps:6 in
  let c0 = Sacprog.Runner.compile_euler_2d ~options:Sac.Pipeline.o0 () in
  let _, q0 = Sacprog.Runner.quadrant_state c0 ~n:10 ~steps:6 in
  check_bool "2D O0 matches native" true
    (Sacprog.Runner.max_abs_diff q0 native < 1e-12);
  let c3 = Sacprog.Runner.compile_euler_2d () in
  let _, q3 = Sacprog.Runner.quadrant_state c3 ~n:10 ~steps:6 in
  check_bool "2D O3 matches native" true
    (Sacprog.Runner.max_abs_diff q3 native < 1e-12)

let test_sacprog_poisson_matches_tridiag () =
  (* The recurrence-style (for-loop) program against the substrate's
     Thomas solver. *)
  let prog = Sac.Parser.parse_program Sacprog.Programs.poisson_1d in
  Sac.Typecheck.check_program prog;
  let ctx = Sac.Eval.make_ctx prog in
  let n = 30 in
  let dx = 1. /. float_of_int (n + 1) in
  let f =
    Tensor.Nd.init [| n |] (fun iv -> Float.sin (float_of_int iv.(0)))
  in
  let u =
    Sac.Value.to_tensor
      (Sac.Eval.run_fun ctx "poisson1d"
         [ Sac.Value.Vdarr f; Sac.Value.Vdbl dx ])
  in
  check_bool "poisson recurrence matches Thomas" true
    (Tensor.Nd.max_abs_diff u (Tensor.Tridiag.poisson_1d ~dx f) < 1e-12)

let test_quadrant_native_features () =
  (* Sanity on the quadrant problem itself: stays physical and forms
     the diagonal jet (density above every initial value along the
     diagonal front). *)
  let prob = Euler.Setup.quadrant ~nx:40 () in
  let s =
    Euler.Solver.create ~config:Euler.Solver.default_config
      ~bcs:prob.Euler.Setup.bcs prob.Euler.Setup.state
  in
  Euler.Solver.run_until s 0.3;
  let st = s.Euler.Solver.state in
  check_bool "positive density" true (Euler.State.min_density st > 0.);
  check_bool "positive pressure" true (Euler.State.min_pressure st > 0.);
  check_bool "compression above initial max" true
    (Tensor.Nd.maxval (Euler.State.density_field st) > 1.5)

let test_codegen_2d_solver () =
  (* Stress the OCaml backend with the full 2D solver: compile it and
     compare a quadrant checksum with the interpreter. *)
  let src =
    Sacprog.Programs.euler_2d
    ^ {|
double checksum2(int n, int steps) {
  q = run2(quadrant_init(n), steps, 1.4, 1.0 / (1.0 * n),
           1.0 / (1.0 * n), 0.5);
  return (sum(q));
}
|}
  in
  let prog = Sac.Parser.parse_program src in
  Sac.Typecheck.check_program prog;
  let interp =
    Sac.Value.to_string
      (Sac.Eval.run_fun (Sac.Eval.make_ctx prog) "checksum2"
         [ Sac.Value.Vint 8; Sac.Value.Vint 4 ])
  in
  match
    Sac.Codegen.compile_and_run ~entry:"checksum2" ~args:[ "8"; "4" ] prog
  with
  | Ok out -> Alcotest.(check string) "compiled = interpreted" interp out
  | Error msg -> Alcotest.failf "codegen: %s" msg

(* ------------------------------------------------------------------ *)
(* The Fig. 4 chain: measure -> model -> paper-shaped conclusions      *)
(* ------------------------------------------------------------------ *)

let test_fig4_shape () =
  let n = 40 in
  (* Instrument all three implementations on a small grid. *)
  let p1 = Euler.Setup.two_channel ~cells_per_h:(n / 2) () in
  let exec_f = Parallel.Exec.sequential () in
  let ftn = Fortran_baseline.F_solver.of_problem p1 in
  Fortran_baseline.F_solver.run_steps ftn exec_f 5;
  let fortran_regions = float_of_int (Parallel.Exec.regions exec_f) /. 5. in
  let p2 = Euler.Setup.two_channel ~cells_per_h:(n / 2) () in
  let arr = Euler.Array_style.create ~bcs:p2.Euler.Setup.bcs p2.Euler.Setup.state in
  Euler.Array_style.run_steps arr 5;
  let sac_regions = Euler.Array_style.with_loops_per_step arr in
  (* Inner-loop autopar creates one region per row per nest: far more
     regions than with-loops in the whole-array code. *)
  (* At this small grid (40 rows) the inner-loop region count is
     already above the with-loop count; it grows linearly with ny
     while the with-loop count stays fixed. *)
  check_bool "fortran region count large" true
    (fortran_regions > 1.2 *. sac_regions);
  (* Feed the model with synthetic but shape-faithful sequential
     times: Fortran faster at one core. *)
  let params = Parallel.Cost_model.default in
  let fortran =
    { Parallel.Cost_model.serial_s = 0.;
      parallel_s = 0.05;
      regions_per_step = fortran_regions *. 10. (* 400^2-scale rows *) }
  and sac =
    { Parallel.Cost_model.serial_s = 0.;
      parallel_s = 0.2;
      regions_per_step = sac_regions }
  in
  let t sched w cores =
    Parallel.Cost_model.predict_step params sched w ~cores
  in
  let open Parallel.Cost_model in
  (* 1 core: Fortran wins (paper: SaC much slower on one core). *)
  check_bool "fortran faster at 1 core" true
    (t Os_fork_join fortran 1 < t Spin_barrier sac 1);
  (* 16 cores: SaC wins (paper: SaC overtakes). *)
  check_bool "sac faster at 16 cores" true
    (t Spin_barrier sac 16 < t Os_fork_join fortran 16);
  (* Fortran degrades relative to its own best. *)
  let fortran_times =
    List.map (fun c -> t Os_fork_join fortran c) [ 1; 2; 4; 8; 16 ]
  in
  let best = List.fold_left Float.min Float.infinity fortran_times in
  check_bool "fortran 16-core worse than its best" true
    (t Os_fork_join fortran 16 > 1.2 *. best);
  (* SaC scales monotonically up to the bandwidth cap. *)
  check_bool "sac 16 cores beats sac 4 cores" true
    (t Spin_barrier sac 16 < t Spin_barrier sac 4);
  (* And a crossover exists. *)
  check_bool "crossover exists" true
    (Parallel.Cost_model.crossover params
       ~fast_serial:(Os_fork_join, fortran) ~scalable:(Spin_barrier, sac)
       ~max_cores:16
     <> None)

(* ------------------------------------------------------------------ *)
(* Long-run robustness                                                 *)
(* ------------------------------------------------------------------ *)

let test_two_channel_long_run_stable () =
  let p = Euler.Setup.two_channel ~cells_per_h:12 () in
  let s =
    Euler.Solver.create ~config:Euler.Solver.default_config
      ~bcs:p.Euler.Setup.bcs p.Euler.Setup.state
  in
  Euler.Solver.run_until s 0.6;
  let st = s.Euler.Solver.state in
  check_bool "density positive" true (Euler.State.min_density st > 0.);
  check_bool "pressure positive" true (Euler.State.min_pressure st > 0.);
  check_bool "density bounded" true
    (Tensor.Nd.maxval (Euler.State.density_field st) < 20.);
  (* Mach stem diagnostic (the Fig. 3 feature). *)
  let rho = Euler.State.density_field st in
  let nn = (Tensor.Nd.shape rho).(0) in
  let diag_max = ref 0. in
  for i = 0 to nn - 1 do
    diag_max := Float.max !diag_max (Tensor.Nd.get rho [| i; i |])
  done;
  let post =
    Euler.Rankine_hugoniot.post_shock ~gamma:Euler.Gas.gamma_air ~ms:2.2
      ~rho0:1. ~p0:1.
  in
  check_bool "Mach stem density excess" true
    (!diag_max > post.Euler.Rankine_hugoniot.rho)

let test_sod_shock_position () =
  (* The computed shock must sit at the exact solver's shock position
     x = 0.5 + 1.75216 t (Toro's Sod data). *)
  let p = Euler.Setup.sod ~nx:400 () in
  let s =
    Euler.Solver.create ~config:Euler.Solver.default_config
      ~bcs:p.Euler.Setup.bcs p.Euler.Setup.state
  in
  Euler.Solver.run_until s 0.2;
  let rho = Euler.State.density_profile s.Euler.Solver.state in
  (* Find the steepest downward jump right of the contact. *)
  let shock_i = ref 0 and steepest = ref 0. in
  for i = 300 to 398 do
    let d = rho.(i) -. rho.(i + 1) in
    if d > !steepest then begin
      steepest := d;
      shock_i := i
    end
  done;
  let x_shock = (float_of_int !shock_i +. 0.5) /. 400. in
  check_bool "shock near exact position" true
    (Float.abs (x_shock -. (0.5 +. (1.75216 *. 0.2))) < 0.02)

(* ------------------------------------------------------------------ *)
(* Differential property: random smooth initial states                 *)
(* ------------------------------------------------------------------ *)

let prop_fortran_matches_reference_random =
  (* Random smooth 1D initial states, integrated a few steps by both
     the reference solver and the Fortran-style baseline under a
     random scheme: they must agree to round-off. *)
  let gen =
    QCheck2.Gen.(
      let* a1 = float_range (-0.3) 0.3 in
      let* a2 = float_range (-0.3) 0.3 in
      let* u0 = float_range (-0.5) 0.5 in
      let* p0 = float_range 0.5 2. in
      let* scheme = int_range 0 3 in
      return (a1, a2, u0, p0, scheme))
  in
  QCheck2.Test.make ~name:"fortran baseline = reference on random states"
    ~count:12 gen (fun (a1, a2, u0, p0, scheme) ->
      let recon =
        match scheme with
        | 0 -> Euler.Recon.Piecewise_constant
        | 1 -> Euler.Recon.Tvd2 Euler.Limiter.Van_leer
        | 2 -> Euler.Recon.Weno3
        | _ -> Euler.Recon.Weno5
      in
      let riemann =
        match scheme with
        | 0 -> Euler.Riemann.Rusanov
        | 1 -> Euler.Riemann.Roe
        | 2 -> Euler.Riemann.Hllc
        | _ -> Euler.Riemann.Hll
      in
      let config =
        { Euler.Solver.recon;
          riemann;
          rk = Euler.Rk.Tvd_rk3;
          cfl = 0.4;
          fused = true;
          tiles = (1, 1) }
      in
      let init () =
        let grid = Euler.Grid.make_1d ~nx:48 ~lx:1. () in
        let st = Euler.State.create grid in
        Euler.State.init_primitive st (fun ~x ~y:_ ->
            let s k = Float.sin (2. *. Float.pi *. k *. x) in
            ( 1. +. (a1 *. s 1.) +. (a2 *. s 2.),
              u0 *. s 1.,
              0.,
              p0 *. (1. +. (a2 *. s 3.)) ));
        { Euler.Setup.state = st;
          bcs = [ (Euler.Bc.West, Euler.Bc.Outflow);
                  (Euler.Bc.East, Euler.Bc.Outflow) ];
          description = "random smooth state" }
      in
      let p1 = init () in
      let reference =
        Euler.Solver.create ~config ~bcs:p1.Euler.Setup.bcs
          p1.Euler.Setup.state
      in
      Euler.Solver.run_steps reference 8;
      let p2 = init () in
      let f = Fortran_baseline.F_solver.of_problem ~config ~cfl:0.4 p2 in
      Fortran_baseline.F_solver.run_steps f
        (Parallel.Exec.sequential ()) 8;
      Euler.State.max_abs_diff reference.Euler.Solver.state
        (Fortran_baseline.F_solver.state f)
      < 1e-11)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_fortran_matches_reference_random ]

let () =
  Alcotest.run "integration"
    [ ( "three-way",
        [ Alcotest.test_case "1d" `Quick test_three_way_1d;
          Alcotest.test_case "2d" `Quick test_three_way_2d ] );
      ( "sacprog",
        [ Alcotest.test_case "O0 vs native" `Quick test_sacprog_unoptimised;
          Alcotest.test_case "O3 vs native" `Quick test_sacprog_optimised;
          Alcotest.test_case "parallel eval" `Quick
            test_sacprog_parallel_eval;
          Alcotest.test_case "2D quadrant" `Quick test_sacprog_2d_quadrant;
          Alcotest.test_case "poisson recurrence" `Quick
            test_sacprog_poisson_matches_tridiag;
          Alcotest.test_case "quadrant features" `Quick
            test_quadrant_native_features;
          Alcotest.test_case "compiled 2D solver" `Slow
            test_codegen_2d_solver ] );
      ( "fig4-chain",
        [ Alcotest.test_case "paper-shaped predictions" `Quick
            test_fig4_shape ] );
      ( "physics",
        [ Alcotest.test_case "two-channel long run" `Slow
            test_two_channel_long_run_stable;
          Alcotest.test_case "sod shock position" `Quick
            test_sod_shock_position ] );
      ("properties", qcheck_cases) ]
