(* Unit, integration and property tests for the Euler solver library. *)

let gamma = Euler.Gas.gamma_air
let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Gas                                                                 *)
(* ------------------------------------------------------------------ *)

let test_gas_roundtrip () =
  let rho = 1.3 and u = 0.4 and v = -0.7 and p = 2.1 in
  let e = Euler.Gas.total_energy ~gamma ~rho ~u ~v ~p in
  let p' =
    Euler.Gas.pressure ~gamma ~rho ~mx:(rho *. u) ~my:(rho *. v) ~e
  in
  check_float 1e-12 "pressure roundtrip" p p'

let test_gas_sound_speed () =
  (* Air at rho = 1, p = 1: c = sqrt(1.4). *)
  check_float 1e-12 "c" (Float.sqrt 1.4)
    (Euler.Gas.sound_speed ~gamma ~rho:1. ~p:1.)

let test_gas_enthalpy () =
  let rho = 2. and u = 0.5 and p = 3. in
  let e = Euler.Gas.total_energy ~gamma ~rho ~u ~v:0. ~p in
  let h = Euler.Gas.enthalpy ~gamma ~rho ~mx:(rho *. u) ~my:0. ~e in
  (* H = c^2/(gamma-1) + q^2/2 for a perfect gas. *)
  let c = Euler.Gas.sound_speed ~gamma ~rho ~p in
  check_float 1e-12 "enthalpy identity"
    ((c *. c /. (gamma -. 1.)) +. (u *. u /. 2.))
    h

let test_gas_physical () =
  check_bool "ok" true (Euler.Gas.is_physical ~rho:1. ~p:0.1);
  check_bool "bad rho" false (Euler.Gas.is_physical ~rho:(-1.) ~p:0.1);
  check_bool "bad p" false (Euler.Gas.is_physical ~rho:1. ~p:0.)

(* ------------------------------------------------------------------ *)
(* Grid                                                                *)
(* ------------------------------------------------------------------ *)

let test_grid_geometry () =
  let g = Euler.Grid.make ~nx:10 ~ny:5 ~lx:2. ~ly:1. () in
  check_float 1e-12 "dx" 0.2 g.Euler.Grid.dx;
  check_float 1e-12 "dy" 0.2 g.Euler.Grid.dy;
  check_float 1e-12 "xc 0" 0.1 (Euler.Grid.xc g 0);
  check_float 1e-12 "yc 4" 0.9 (Euler.Grid.yc g 4);
  check_int "cells" ((10 + 6) * (5 + 6)) g.Euler.Grid.cells;
  check_int "interior" 50 (Euler.Grid.interior_cells g);
  check_bool "not 1d" false (Euler.Grid.is_1d g)

let test_grid_offset_unique () =
  let g = Euler.Grid.make ~nx:4 ~ny:3 ~ng:2 ~lx:1. ~ly:1. () in
  let seen = Hashtbl.create 64 in
  for iy = -2 to 4 do
    for ix = -2 to 5 do
      let o = Euler.Grid.offset g ix iy in
      check_bool "offset in range" true (o >= 0 && o < g.Euler.Grid.cells);
      check_bool "offset unique" false (Hashtbl.mem seen o);
      Hashtbl.add seen o ()
    done
  done

let test_grid_1d () =
  let g = Euler.Grid.make_1d ~nx:100 ~lx:1. () in
  check_bool "is 1d" true (Euler.Grid.is_1d g);
  check_float 1e-12 "dx" 0.01 g.Euler.Grid.dx

let test_grid_invalid () =
  check_bool "zero cells rejected" true
    (try
       ignore (Euler.Grid.make ~nx:0 ~ny:1 ~lx:1. ~ly:1. ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

let test_state_primitive_roundtrip () =
  let g = Euler.Grid.make ~nx:4 ~ny:4 ~lx:1. ~ly:1. () in
  let st = Euler.State.create g in
  Euler.State.set_primitive st 2 1 ~rho:0.7 ~u:1.1 ~v:(-0.3) ~p:2.2;
  let rho, u, v, p = Euler.State.primitive st 2 1 in
  check_float 1e-12 "rho" 0.7 rho;
  check_float 1e-12 "u" 1.1 u;
  check_float 1e-12 "v" (-0.3) v;
  check_float 1e-12 "p" 2.2 p

let test_state_totals () =
  let prob = Euler.Setup.uniform ~rho:2. ~u:0. ~v:0. ~p:1. ~nx:8 ~ny:8 () in
  let st = prob.Euler.Setup.state in
  (* Unit domain, rho = 2 everywhere: total mass = 2. *)
  check_float 1e-12 "mass" 2. (Euler.State.total_mass st);
  check_float 1e-12 "x momentum" 0. (Euler.State.total_momentum_x st);
  check_float 1e-9 "energy" (1. /. 0.4) (Euler.State.total_energy st)

let test_state_fields () =
  let prob = Euler.Setup.sod ~nx:10 () in
  let st = prob.Euler.Setup.state in
  let rho = Euler.State.density_field st in
  Alcotest.(check (array int)) "field shape" [| 1; 10 |]
    (Tensor.Nd.shape rho);
  check_float 1e-12 "left density" 1. (Tensor.Nd.get rho [| 0; 0 |]);
  check_float 1e-12 "right density" 0.125 (Tensor.Nd.get rho [| 0; 9 |]);
  let profile = Euler.State.density_profile st in
  check_float 1e-12 "profile matches field" (Tensor.Nd.get rho [| 0; 3 |])
    profile.(3)

let test_state_copy_blit_diff () =
  let prob = Euler.Setup.sod ~nx:16 () in
  let a = prob.Euler.Setup.state in
  let b = Euler.State.copy a in
  check_float 1e-15 "copy equal" 0. (Euler.State.max_abs_diff a b);
  Euler.State.set_primitive b 3 0 ~rho:9. ~u:0. ~v:0. ~p:9.;
  check_bool "diff detects change" true
    (Euler.State.max_abs_diff a b > 1.);
  Euler.State.blit ~src:a ~dst:b;
  check_float 1e-15 "blit restores" 0. (Euler.State.max_abs_diff a b)

(* ------------------------------------------------------------------ *)
(* Limiters                                                            *)
(* ------------------------------------------------------------------ *)

let limiters = List.map snd Euler.Limiter.all

let test_limiter_zero_at_extrema () =
  List.iter
    (fun lim ->
      check_float 1e-15
        (Euler.Limiter.name lim ^ " opposite signs")
        0.
        (Euler.Limiter.apply lim 1.0 (-0.5)))
    limiters

let test_limiter_linear_preserved () =
  (* Equal slopes pass through unchanged. *)
  List.iter
    (fun lim ->
      check_float 1e-12
        (Euler.Limiter.name lim ^ " equal slopes")
        0.7
        (Euler.Limiter.apply lim 0.7 0.7))
    limiters

let test_limiter_specific_values () =
  check_float 1e-12 "minmod picks smaller" 0.5 (Euler.Limiter.minmod 0.5 1.5);
  check_float 1e-12 "superbee compresses" 1.0
    (Euler.Limiter.superbee 0.5 1.5);
  check_float 1e-12 "van leer harmonic" (2. *. 0.5 *. 1.5 /. 2.)
    (Euler.Limiter.van_leer 0.5 1.5);
  check_float 1e-12 "mc median" 1.0
    (Euler.Limiter.monotonized_central 0.5 1.5);
  check_float 1e-12 "minmod3 positive" 0.5 (Euler.Limiter.minmod3 2. 0.5 1.);
  check_float 1e-12 "minmod3 mixed" 0. (Euler.Limiter.minmod3 2. (-0.5) 1.)

let test_limiter_names () =
  List.iter
    (fun (name, lim) ->
      Alcotest.(check (option bool))
        ("roundtrip " ^ name) (Some true)
        (Option.map (fun l -> l = lim) (Euler.Limiter.of_string name)))
    Euler.Limiter.all;
  Alcotest.(check bool) "unknown" true (Euler.Limiter.of_string "nope" = None)

(* ------------------------------------------------------------------ *)
(* Characteristic decomposition                                        *)
(* ------------------------------------------------------------------ *)

let mat_mul_ident l r =
  (* || L * R - I ||_inf for row-major 4x4 matrices. *)
  let m = ref 0. in
  for i = 0 to 3 do
    for j = 0 to 3 do
      let s = ref 0. in
      for k = 0 to 3 do
        s := !s +. (l.((i * 4) + k) *. r.((k * 4) + j))
      done;
      let expected = if i = j then 1. else 0. in
      m := Float.max !m (Float.abs (!s -. expected))
    done
  done;
  !m

let test_characteristic_inverse () =
  let b =
    Euler.Characteristic.of_state ~gamma ~rho:1.2 ~un:0.4 ~ut:(-0.2) ~p:0.9
  in
  check_bool "L R = I" true
    (mat_mul_ident
       (Euler.Characteristic.left_matrix b)
       (Euler.Characteristic.right_matrix b)
     < 1e-12)

let test_characteristic_roundtrip () =
  let b =
    Euler.Characteristic.of_state ~gamma ~rho:0.8 ~un:(-1.5) ~ut:0.6 ~p:2.
  in
  let q = [| 0.8; -1.2; 0.48; 5. |] in
  let w = Array.make 4 0. and q' = Array.make 4 0. in
  Euler.Characteristic.to_characteristic b q w;
  Euler.Characteristic.from_characteristic b w q';
  Array.iteri
    (fun i x -> check_float 1e-10 (Printf.sprintf "q[%d]" i) x q'.(i))
    q

let test_characteristic_eigenvalues () =
  let rho = 1. and un = 0.3 and p = 1. in
  let b = Euler.Characteristic.of_state ~gamma ~rho ~un ~ut:0. ~p in
  let c = Euler.Gas.sound_speed ~gamma ~rho ~p in
  let l1, l2, l3, l4 = Euler.Characteristic.eigenvalues b in
  check_float 1e-12 "u-c" (un -. c) l1;
  check_float 1e-12 "u" un l2;
  check_float 1e-12 "u shear" un l3;
  check_float 1e-12 "u+c" (un +. c) l4

let test_characteristic_roe_symmetric () =
  (* Roe average of two identical states is that state. *)
  let s = (1.4, 0.2, -0.1, 2.) in
  let b = Euler.Characteristic.of_roe_average ~gamma ~left:s ~right:s in
  let b' =
    let rho, un, ut, p = s in
    Euler.Characteristic.of_state ~gamma ~rho ~un ~ut ~p
  in
  let l1, _, _, l4 = Euler.Characteristic.eigenvalues b
  and l1', _, _, l4' = Euler.Characteristic.eigenvalues b' in
  check_float 1e-12 "u-c matches" l1' l1;
  check_float 1e-12 "u+c matches" l4' l4

let test_characteristic_rejects_bad () =
  check_bool "negative pressure rejected" true
    (try
       ignore
         (Euler.Characteristic.of_state ~gamma ~rho:1. ~un:0. ~ut:0.
            ~p:(-1.));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Riemann solvers                                                     *)
(* ------------------------------------------------------------------ *)

let solvers =
  [ Euler.Riemann.Rusanov; Euler.Riemann.Hll; Euler.Riemann.Hllc;
    Euler.Riemann.Roe ]

let physical_flux state =
  let rho, un, ut, p = state in
  let f = Array.make 4 0. in
  Euler.Riemann.physical_flux_into ~gamma ~rho ~un ~ut ~p ~f;
  f

let test_riemann_consistency () =
  (* F(q, q) must equal the physical flux F(q). *)
  let state = (1.3, 0.7, -0.4, 2.1) in
  let expected = physical_flux state in
  List.iter
    (fun kind ->
      let f = Euler.Riemann.flux kind ~gamma ~left:state ~right:state in
      Array.iteri
        (fun k x ->
          check_float 1e-10
            (Printf.sprintf "%s consistency [%d]" (Euler.Riemann.name kind) k)
            expected.(k) x)
        f)
    solvers

let test_riemann_supersonic_upwind () =
  (* Supersonic flow to the right: every solver must return the left
     state's physical flux. *)
  let left = (1., 3., 0., 1.) and right = (0.5, 2.8, 0., 0.4) in
  let expected = physical_flux left in
  List.iter
    (fun kind ->
      let f = Euler.Riemann.flux kind ~gamma ~left ~right in
      Array.iteri
        (fun k x ->
          check_float 5e-2
            (Printf.sprintf "%s upwind [%d]" (Euler.Riemann.name kind) k)
            expected.(k) x)
        f)
    [ Euler.Riemann.Hll; Euler.Riemann.Hllc ]

let test_riemann_sod_star_values () =
  (* HLLC resolves the stationary contact exactly: for a pure contact
     discontinuity (equal u and p), the mass flux is rho_upwind * u. *)
  let left = (1., 0.1, 0., 1.) and right = (0.5, 0.1, 0., 1.) in
  let f = Euler.Riemann.flux Euler.Riemann.Hllc ~gamma ~left ~right in
  check_float 1e-10 "contact mass flux" 0.1 f.(0);
  check_float 1e-10 "contact momentum flux" (1. *. 0.1 *. 0.1 +. 1.) f.(1)

let test_riemann_rejects_bad () =
  check_bool "bad state rejected" true
    (try
       ignore
         (Euler.Riemann.flux Euler.Riemann.Hll ~gamma ~left:(0., 0., 0., 1.)
            ~right:(1., 0., 0., 1.));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Reconstruction                                                      *)
(* ------------------------------------------------------------------ *)

let all_schemes =
  List.filter_map Euler.Recon.of_string Euler.Recon.all_names

let window_of k f =
  Array.init (Euler.Recon.stencil_width k) (fun i -> f (float_of_int i))

let test_recon_constant () =
  (* Constant data reconstructs to the constant. *)
  List.iter
    (fun k ->
      let wl, wr = Euler.Recon.left_right_window k (window_of k (fun _ -> 3.)) in
      check_float 1e-12 (Euler.Recon.name k ^ " wl") 3. wl;
      check_float 1e-12 (Euler.Recon.name k ^ " wr") 3. wr)
    all_schemes

let test_recon_linear_exact () =
  (* Linear data: every scheme of order >= 2 must hit the interface
     value exactly (the midpoint of the two central cells). *)
  List.iter
    (fun k ->
      if Euler.Recon.order k >= 2 then begin
        let wl, wr =
          Euler.Recon.left_right_window k (window_of k (fun x -> x))
        in
        let expected =
          float_of_int (Euler.Recon.stencil_width k / 2) -. 0.5
        in
        check_float 1e-5 (Euler.Recon.name k ^ " wl linear") expected wl;
        check_float 1e-5 (Euler.Recon.name k ^ " wr linear") expected wr
      end)
    all_schemes

let test_recon_pc () =
  let wl, wr =
    Euler.Recon.left_right Euler.Recon.Piecewise_constant 0. 1. 2. 3.
  in
  check_float 1e-15 "pc left" 1. wl;
  check_float 1e-15 "pc right" 2. wr

let test_recon_monotone_at_jump () =
  (* Across a discontinuity the reconstructed states stay within the
     data range (no over/undershoot); WENO schemes only guarantee it
     essentially, so they are excluded here (their discontinuity
     behaviour is checked through the weight tests instead). *)
  List.iter
    (fun k ->
      let half = Euler.Recon.stencil_width k / 2 in
      let w =
        window_of k (fun x -> if x < float_of_int half then 0. else 1.)
      in
      let wl, wr = Euler.Recon.left_right_window k w in
      check_bool (Euler.Recon.name k ^ " wl bounded") true
        (wl >= -1e-9 && wl <= 1. +. 1e-9);
      check_bool (Euler.Recon.name k ^ " wr bounded") true
        (wr >= -1e-9 && wr <= 1. +. 1e-9))
    (List.filter
       (fun k ->
         match k with
         | Euler.Recon.Weno3 | Euler.Recon.Weno5 -> false
         | _ -> true)
       all_schemes)

let test_recon_weno_weights () =
  (* Smooth data: weights near the ideal (2/3, 1/3); at a jump the
     stencil crossing it gets nearly zero weight. *)
  let o0, o1 = Euler.Recon.weno3_weights 1.0 1.01 1.02 in
  check_float 0.02 "smooth w0" (2. /. 3.) o0;
  check_float 0.02 "smooth w1" (1. /. 3.) o1;
  let o0, o1 = Euler.Recon.weno3_weights 1.0 1.0 100.0 in
  (* Central stencil {w1, w2} crosses the jump: it must be ignored. *)
  check_bool "jump ignored" true (o0 < 1e-4);
  check_bool "upwind favoured" true (o1 > 0.999)

let test_recon_weno5 () =
  (* Smooth data: weights near the ideal (0.1, 0.6, 0.3). *)
  let o0, o1, o2 =
    Euler.Recon.weno5_weights [| 1.0; 1.01; 1.02; 1.03; 1.04 |]
  in
  check_float 0.01 "smooth w0" 0.1 o0;
  check_float 0.01 "smooth w1" 0.6 o1;
  check_float 0.01 "smooth w2" 0.3 o2;
  (* A jump in the rightmost stencil zeroes its weight. *)
  let _, _, o2 = Euler.Recon.weno5_weights [| 1.; 1.; 1.; 1.; 100. |] in
  check_bool "jump stencil rejected" true (o2 < 1e-4);
  (* Parabolic data x^2: the scheme is exact for polynomials up to
     degree 4 when the nonlinear weights are near-ideal; interface at
     x = 2.5 between cells 2 and 3, cell averages i^2 + 1/12. *)
  let cell_avg i = (float_of_int i ** 2.) +. (1. /. 12.) in
  let w = Array.init 6 cell_avg in
  let wl, wr = Euler.Recon.left_right_window Euler.Recon.Weno5 w in
  check_float 1e-3 "parabola point value left" 6.25 wl;
  check_float 1e-3 "parabola point value right" 6.25 wr;
  (* left_right (4-point) must refuse. *)
  check_bool "4-point entry refused" true
    (try
       ignore (Euler.Recon.left_right Euler.Recon.Weno5 0. 0. 0. 0.);
       false
     with Invalid_argument _ -> true)

let test_recon_parsing () =
  List.iter
    (fun name ->
      match Euler.Recon.of_string name with
      | Some k ->
        Alcotest.(check string) ("roundtrip " ^ name) name
          (Euler.Recon.name k)
      | None -> Alcotest.failf "could not parse %s" name)
    Euler.Recon.all_names;
  check_bool "bare tvd2" true
    (Euler.Recon.of_string "tvd2" = Some (Euler.Recon.Tvd2 Euler.Limiter.Minmod));
  check_bool "junk" true (Euler.Recon.of_string "tvd9:minmod" = None)

let test_recon_ghosts () =
  check_int "pc ghosts" 1 (Euler.Recon.ghost_needed Euler.Recon.Piecewise_constant);
  check_int "weno3 ghosts" 2 (Euler.Recon.ghost_needed Euler.Recon.Weno3);
  check_int "weno5 ghosts" 3 (Euler.Recon.ghost_needed Euler.Recon.Weno5);
  check_int "weno5 width" 6 (Euler.Recon.stencil_width Euler.Recon.Weno5)

(* ------------------------------------------------------------------ *)
(* Rankine-Hugoniot                                                    *)
(* ------------------------------------------------------------------ *)

let test_rh_weak_shock_limit () =
  (* Ms -> 1: the post-shock state tends to the quiescent state. *)
  let s = Euler.Rankine_hugoniot.post_shock ~gamma ~ms:1.0001 ~rho0:1. ~p0:1. in
  check_float 1e-3 "rho -> rho0" 1. s.Euler.Rankine_hugoniot.rho;
  check_float 1e-3 "u -> 0" 0. s.Euler.Rankine_hugoniot.u;
  check_float 1e-3 "p -> p0" 1. s.Euler.Rankine_hugoniot.p

let test_rh_ms22 () =
  (* Standard normal-shock table values for Ms = 2.2, gamma = 1.4:
     p2/p1 = 5.48, rho2/rho1 = 2.9512. *)
  let s = Euler.Rankine_hugoniot.post_shock ~gamma ~ms:2.2 ~rho0:1. ~p0:1. in
  check_float 1e-3 "pressure ratio" 5.48 s.Euler.Rankine_hugoniot.p;
  check_float 1e-3 "density ratio" 2.9512 s.Euler.Rankine_hugoniot.rho

let test_rh_conservation () =
  (* The jump must satisfy the conservation laws across the shock in
     the shock frame. *)
  let ms = 2.2 and rho0 = 1. and p0 = 1. in
  let s = Euler.Rankine_hugoniot.post_shock ~gamma ~ms ~rho0 ~p0 in
  let ws = s.Euler.Rankine_hugoniot.shock_speed in
  (* Mass: rho0 * ws = rho2 * (ws - u2). *)
  check_float 1e-10 "mass jump" (rho0 *. ws)
    (s.Euler.Rankine_hugoniot.rho *. (ws -. s.Euler.Rankine_hugoniot.u));
  (* Momentum: p0 + rho0 ws^2 = p2 + rho2 (ws - u2)^2. *)
  check_float 1e-9 "momentum jump"
    (p0 +. (rho0 *. ws *. ws))
    (s.Euler.Rankine_hugoniot.p
     +. (s.Euler.Rankine_hugoniot.rho
         *. (ws -. s.Euler.Rankine_hugoniot.u)
         *. (ws -. s.Euler.Rankine_hugoniot.u)))

let test_rh_supersonic_exit () =
  (* The paper relies on the exit flow being supersonic at Ms = 2.2. *)
  check_bool "M2 > 1 at Ms=2.2" true
    (Euler.Rankine_hugoniot.mach_behind ~gamma ~ms:2.2 > 1.);
  check_bool "M2 < 1 at Ms=1.5" true
    (Euler.Rankine_hugoniot.mach_behind ~gamma ~ms:1.5 < 1.)

(* ------------------------------------------------------------------ *)
(* Exact Riemann solver                                                *)
(* ------------------------------------------------------------------ *)

let sod_left = (1., 0., 1.)
let sod_right = (0.125, 0., 0.1)

let test_exact_sod_star () =
  (* Published star values for the Sod problem (Toro, table 4.2):
     p* = 0.30313, u* = 0.92745. *)
  let s =
    Euler.Exact_riemann.solve ~gamma ~left:sod_left ~right:sod_right ()
  in
  check_float 1e-4 "p*" 0.30313 s.Euler.Exact_riemann.p_star;
  check_float 1e-4 "u*" 0.92745 s.Euler.Exact_riemann.u_star

let test_exact_sod_sampled_states () =
  (* Density left of the contact: 0.42632; right: 0.26557 (Toro). *)
  let sample xi =
    Euler.Exact_riemann.sample ~gamma ~left:sod_left ~right:sod_right ~xi
  in
  let rho_l, _, _ = sample 0.8 in
  check_float 1e-4 "rho left of contact" 0.42632 rho_l;
  let rho_r, _, _ = sample 1.2 in
  check_float 1e-4 "rho right of contact" 0.26557 rho_r;
  (* Far fields untouched. *)
  let rho, u, p = sample (-5.) in
  check_float 1e-12 "left state" 1. rho;
  check_float 1e-12 "left u" 0. u;
  check_float 1e-12 "left p" 1. p;
  let rho, _, _ = sample 5. in
  check_float 1e-12 "right state" 0.125 rho

let test_exact_symmetric_problem () =
  (* Symmetric colliding flows: u* = 0 by symmetry. *)
  let s =
    Euler.Exact_riemann.solve ~gamma ~left:(1., 1., 1.)
      ~right:(1., -1., 1.) ()
  in
  check_float 1e-10 "u* symmetric" 0. s.Euler.Exact_riemann.u_star;
  check_bool "compression raises p*" true (s.Euler.Exact_riemann.p_star > 1.)

let test_exact_vacuum_detected () =
  check_bool "vacuum raises" true
    (try
       ignore
         (Euler.Exact_riemann.solve ~gamma ~left:(1., -10., 1.)
            ~right:(1., 10., 1.) ());
       false
     with Failure _ -> true)

let test_exact_rarefaction_continuous () =
  (* The solution through a rarefaction fan is continuous: sample on a
     fine grid of xi and check increments are small. *)
  let prev = ref None in
  let max_jump = ref 0. in
  for i = 0 to 400 do
    let xi = -2. +. (float_of_int i /. 100.) in
    let rho, _, _ =
      Euler.Exact_riemann.sample ~gamma ~left:sod_left ~right:sod_right ~xi
    in
    (match !prev with
     | Some r ->
       (* Exclude the genuine discontinuities (contact, shock). *)
       if xi < 0.8 then max_jump := Float.max !max_jump (Float.abs (rho -. r))
     | None -> ());
    prev := Some rho
  done;
  check_bool "no spurious jumps in the fan" true (!max_jump < 0.01)

(* ------------------------------------------------------------------ *)
(* Boundary conditions                                                 *)
(* ------------------------------------------------------------------ *)

let test_bc_outflow () =
  let prob = Euler.Setup.sod ~nx:8 () in
  let st = prob.Euler.Setup.state in
  Euler.Bc.apply ~t:0. st prob.Euler.Setup.bcs;
  (* Ghost cells copy the nearest interior cell. *)
  let rho_g, u_g, _, p_g = Euler.State.primitive st (-1) 0 in
  let rho_i, u_i, _, p_i = Euler.State.primitive st 0 0 in
  check_float 1e-12 "ghost rho" rho_i rho_g;
  check_float 1e-12 "ghost u" u_i u_g;
  check_float 1e-12 "ghost p" p_i p_g

let test_bc_reflective () =
  let g = Euler.Grid.make ~nx:4 ~ny:4 ~lx:1. ~ly:1. () in
  let st = Euler.State.create g in
  Euler.State.init_primitive st (fun ~x ~y:_ -> (1., 0.5 +. x, 0.2, 1.));
  Euler.Bc.apply_side ~t:0. st Euler.Bc.West Euler.Bc.Reflective;
  let _, u_g, v_g, _ = Euler.State.primitive st (-1) 1
  and _, u_m, v_m, _ = Euler.State.primitive st 0 1 in
  check_float 1e-12 "normal velocity negated" (-.u_m) u_g;
  check_float 1e-12 "transverse velocity kept" v_m v_g;
  (* North wall negates v instead. *)
  Euler.Bc.apply_side ~t:0. st Euler.Bc.North Euler.Bc.Reflective;
  let _, u_g, v_g, _ = Euler.State.primitive st 1 4
  and _, u_m, v_m, _ = Euler.State.primitive st 1 3 in
  check_float 1e-12 "v negated" (-.v_m) v_g;
  check_float 1e-12 "u kept" u_m u_g

let test_bc_inflow () =
  let g = Euler.Grid.make ~nx:4 ~ny:4 ~lx:1. ~ly:1. () in
  let st = Euler.State.create g in
  Euler.State.init_primitive st (fun ~x:_ ~y:_ -> (1., 0., 0., 1.));
  Euler.Bc.apply_side ~t:0. st Euler.Bc.West
    (Euler.Bc.Inflow { rho = 2.9; u = 1.7; v = 0.; p = 5.4 });
  let rho, u, v, p = Euler.State.primitive st (-2) 2 in
  check_float 1e-12 "inflow rho" 2.9 rho;
  check_float 1e-12 "inflow u" 1.7 u;
  check_float 1e-12 "inflow v" 0. v;
  check_float 1e-12 "inflow p" 5.4 p

let test_bc_segmented () =
  let g = Euler.Grid.make ~nx:4 ~ny:4 ~lx:2. ~ly:2. () in
  let st = Euler.State.create g in
  Euler.State.init_primitive st (fun ~x:_ ~y:_ -> (1., 0.3, 0.1, 1.));
  (* Inflow below y = 1, default (reflective wall) above. *)
  Euler.Bc.apply_side ~t:0. st Euler.Bc.West
    (Euler.Bc.Segmented
       [ (0., 1., Euler.Bc.Inflow { rho = 2.; u = 1.; v = 0.; p = 3. }) ]);
  let rho, _, _, _ = Euler.State.primitive st (-1) 0 in
  check_float 1e-12 "inflow segment" 2. rho;
  let _, u_g, _, _ = Euler.State.primitive st (-1) 3
  and _, u_m, _, _ = Euler.State.primitive st 0 3 in
  check_float 1e-12 "wall segment mirrors" (-.u_m) u_g

let test_bc_nested_segmented_rejected () =
  let g = Euler.Grid.make ~nx:2 ~ny:2 ~lx:1. ~ly:1. () in
  let st = Euler.State.create g in
  Euler.State.init_primitive st (fun ~x:_ ~y:_ -> (1., 0., 0., 1.));
  check_bool "nested rejected" true
    (try
       Euler.Bc.apply_side ~t:0. st Euler.Bc.West
         (Euler.Bc.Segmented [ (0., 1., Euler.Bc.Segmented []) ]);
       false
     with Invalid_argument _ -> true)

let test_bc_time_dependent () =
  let g = Euler.Grid.make ~nx:4 ~ny:4 ~lx:2. ~ly:2. () in
  let st = Euler.State.create g in
  Euler.State.init_primitive st (fun ~x:_ ~y:_ -> (1., 0.5, 0., 1.));
  (* A clocked boundary: inflow before t = 1, outflow after. *)
  let kind =
    Euler.Bc.Time_dependent
      (fun t ->
        if t < 1. then Euler.Bc.Inflow { rho = 2.; u = 1.; v = 0.; p = 3. }
        else Euler.Bc.Outflow)
  in
  Euler.Bc.apply_side ~t:0. st Euler.Bc.West kind;
  let rho, _, _, _ = Euler.State.primitive st (-1) 0 in
  check_float 1e-12 "early: inflow" 2. rho;
  Euler.Bc.apply_side ~t:2. st Euler.Bc.West kind;
  let rho, _, _, _ = Euler.State.primitive st (-1) 0 in
  check_float 1e-12 "late: outflow copies interior" 1. rho;
  (* The closure may return Segmented (the DMR top boundary): resolve
     collapses both layers at a given coordinate, and the uncovered
     region falls back to the Reflective default. *)
  let moving =
    Euler.Bc.Time_dependent
      (fun t ->
        Euler.Bc.Segmented
          [ (-1e9, t, Euler.Bc.Inflow { rho = 2.; u = 1.; v = 0.; p = 3. }) ])
  in
  (match Euler.Bc.resolve ~t:0.6 ~coord:0.5 moving with
  | Euler.Bc.Inflow { rho; _ } -> check_float 1e-12 "resolved inflow" 2. rho
  | _ -> Alcotest.fail "expected Inflow behind the moving front");
  (match Euler.Bc.resolve ~t:0.6 ~coord:0.7 moving with
  | Euler.Bc.Reflective -> ()
  | _ -> Alcotest.fail "expected Reflective default ahead of the front");
  (* A closure that never grounds out in a flat kind is rejected, not
     spun on forever. *)
  let rec divergent _t = Euler.Bc.Time_dependent divergent in
  check_bool "divergent closure rejected" true
    (try
       ignore
         (Euler.Bc.resolve ~t:0. ~coord:0. (Euler.Bc.Time_dependent divergent));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Time step                                                           *)
(* ------------------------------------------------------------------ *)

let test_dt_uniform () =
  let prob = Euler.Setup.uniform ~rho:1. ~u:0.5 ~v:(-0.5) ~p:1. ~nx:10 ~ny:10 () in
  let exec = Parallel.Exec.sequential () in
  let c = Euler.Gas.sound_speed ~gamma ~rho:1. ~p:1. in
  let expected_ev = ((0.5 +. c) /. 0.1) +. ((0.5 +. c) /. 0.1) in
  check_float 1e-9 "EV uniform" expected_ev
    (Euler.Time_step.max_eigenvalue exec prob.Euler.Setup.state);
  check_float 1e-9 "dt" (0.5 /. expected_ev)
    (Euler.Time_step.dt ~cfl:0.5 exec prob.Euler.Setup.state)

let test_dt_1d_ignores_y () =
  let prob = Euler.Setup.sod ~nx:10 () in
  let exec = Parallel.Exec.sequential () in
  let ev = Euler.Time_step.max_eigenvalue exec prob.Euler.Setup.state in
  (* Left state dominates: (|0| + sqrt(1.4)) / 0.1. *)
  check_float 1e-9 "1d EV" (Float.sqrt 1.4 /. 0.1) ev

let test_dt_invalid_cfl () =
  let prob = Euler.Setup.sod ~nx:4 () in
  let exec = Parallel.Exec.sequential () in
  check_bool "cfl <= 0 rejected" true
    (try
       ignore (Euler.Time_step.dt ~cfl:0. exec prob.Euler.Setup.state);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Solver behaviour                                                    *)
(* ------------------------------------------------------------------ *)

let make_sod_solver ?(config = Euler.Solver.default_config) nx =
  let prob = Euler.Setup.sod ~nx () in
  Euler.Solver.create ~config ~bcs:prob.Euler.Setup.bcs
    prob.Euler.Setup.state

let test_solver_uniform_stationary () =
  (* A constant state must stay constant through any scheme. *)
  List.iter
    (fun recon ->
      let prob = Euler.Setup.uniform ~nx:8 ~ny:8 () in
      let before = Euler.State.copy prob.Euler.Setup.state in
      let config = { Euler.Solver.default_config with Euler.Solver.recon } in
      let s =
        Euler.Solver.create ~config ~bcs:prob.Euler.Setup.bcs
          prob.Euler.Setup.state
      in
      Euler.Solver.run_steps s 5;
      check_bool
        (Euler.Recon.name recon ^ " stationary")
        true
        (Euler.State.max_abs_diff before s.Euler.Solver.state < 1e-13))
    all_schemes

let test_solver_conservation () =
  (* Outflow boundaries see no flow before waves arrive: mass and
     energy are conserved exactly while everything stays interior. *)
  let s = make_sod_solver 100 in
  let m0 = Euler.State.total_mass s.Euler.Solver.state
  and e0 = Euler.State.total_energy s.Euler.Solver.state in
  Euler.Solver.run_until s 0.1;
  check_float 1e-12 "mass conserved" m0
    (Euler.State.total_mass s.Euler.Solver.state);
  check_float 1e-12 "energy conserved" e0
    (Euler.State.total_energy s.Euler.Solver.state)

let test_solver_sod_accuracy () =
  let s = make_sod_solver 200 in
  Euler.Solver.run_until s 0.2;
  let rho = Euler.State.density_profile s.Euler.Solver.state in
  let _, exact = Euler.Setup.sod_exact_profile ~nx:200 ~t:0.2 () in
  let l1 = ref 0. in
  Array.iteri
    (fun i r ->
      let re, _, _ = exact.(i) in
      l1 := !l1 +. Float.abs (r -. re))
    rho;
  check_bool "WENO3 L1 < 0.006" true (!l1 /. 200. < 0.006)

let test_solver_sod_all_configs_stable () =
  (* Every scheme x solver combination survives the Sod problem with
     positive density and pressure. *)
  List.iter
    (fun recon ->
      List.iter
        (fun riemann ->
          let config =
            { Euler.Solver.recon;
              riemann;
              rk = Euler.Rk.Tvd_rk3;
              cfl = 0.4;
              fused = true;
              tiles = (1, 1) }
          in
          let s = make_sod_solver ~config 60 in
          Euler.Solver.run_until s 0.15;
          let name =
            Euler.Recon.name recon ^ "+" ^ Euler.Riemann.name riemann
          in
          check_bool (name ^ " rho > 0") true
            (Euler.State.min_density s.Euler.Solver.state > 0.);
          check_bool (name ^ " p > 0") true
            (Euler.State.min_pressure s.Euler.Solver.state > 0.))
        solvers)
    all_schemes

let test_solver_123_positivity () =
  (* Double rarefaction: the near-vacuum centre breaks non-robust
     schemes; HLL-family with the positivity fallback must survive. *)
  let prob = Euler.Setup.test123 ~nx:100 () in
  let config =
    { Euler.Solver.recon = Euler.Recon.Weno3;
      riemann = Euler.Riemann.Hll;
      rk = Euler.Rk.Tvd_rk3;
      cfl = 0.4;
      fused = true;
      tiles = (1, 1) }
  in
  let s =
    Euler.Solver.create ~config ~bcs:prob.Euler.Setup.bcs
      prob.Euler.Setup.state
  in
  Euler.Solver.run_until s 0.15;
  check_bool "rho stays positive" true
    (Euler.State.min_density s.Euler.Solver.state > 0.);
  check_bool "p stays positive" true
    (Euler.State.min_pressure s.Euler.Solver.state > 0.)

let test_solver_convergence_order () =
  (* Smooth acoustic pulse: WENO3+RK3 must converge at better than
     first order in L1 (the pulse advects; limiting costs some order
     at the extrema, so demand > 1.5 between n=50 and n=100). *)
  let err nx =
    let prob = Euler.Setup.acoustic_pulse ~nx () in
    let config = Euler.Solver.default_config in
    let s =
      Euler.Solver.create ~config ~bcs:prob.Euler.Setup.bcs
        prob.Euler.Setup.state
    in
    let reference = Euler.State.copy prob.Euler.Setup.state in
    ignore reference;
    Euler.Solver.run_until s 0.05;
    (* Compare against a fine-grid solution interpolated: use the
       self-convergence trick of doubling instead -- here simply
       return the profile. *)
    s
  in
  let s1 = err 50 and s2 = err 100 in
  ignore (s1, s2);
  (* Self-convergence: coarsen the fine solution and compare. *)
  let rho1 = Euler.State.density_profile s1.Euler.Solver.state in
  let rho2 = Euler.State.density_profile s2.Euler.Solver.state in
  let coarse_of_fine =
    Array.init 50 (fun i -> 0.5 *. (rho2.((2 * i)) +. rho2.((2 * i) + 1)))
  in
  let diff = ref 0. in
  Array.iteri
    (fun i r -> diff := !diff +. Float.abs (r -. coarse_of_fine.(i)))
    rho1;
  (* The coarse-fine difference must be tiny for a smooth solution. *)
  check_bool "smooth self-convergence" true (!diff /. 50. < 2e-4)

let test_solver_rk_orders_agree () =
  (* All integrators approach the same solution; RK3 and RK2 should be
     closer to each other than RK1 is to RK3. *)
  let final rk =
    let prob = Euler.Setup.sod ~nx:100 () in
    let config =
      { Euler.Solver.default_config with Euler.Solver.rk; cfl = 0.3 }
    in
    let s =
      Euler.Solver.create ~config ~bcs:prob.Euler.Setup.bcs
        prob.Euler.Setup.state
    in
    Euler.Solver.run_until s 0.1;
    s.Euler.Solver.state
  in
  let q1 = final Euler.Rk.Euler1
  and q2 = final Euler.Rk.Tvd_rk2
  and q3 = final Euler.Rk.Tvd_rk3 in
  let d23 = Euler.State.max_abs_diff q2 q3
  and d13 = Euler.State.max_abs_diff q1 q3 in
  check_bool "rk2 closer to rk3 than rk1" true (d23 < d13);
  check_bool "all reasonably close" true (d13 < 0.05)

let test_solver_run_until_exact () =
  let s = make_sod_solver 50 in
  Euler.Solver.run_until s 0.123;
  check_float 1e-12 "time hit exactly" 0.123 s.Euler.Solver.time

let test_solver_regions_counted () =
  (* Fused path: one dispatch per RK stage, and the dt reduction is
     folded into the last stage's sweep, so only the very first step
     pays a standalone GetDT region: (1 + 3) + 3 + 3 = 10 regions over
     3 steps — under the tentpole's ceiling of 4 regions/step. *)
  let s = make_sod_solver 32 in
  Euler.Solver.run_steps s 3;
  check_float 1e-9 "fused regions/step" (10. /. 3.)
    (Euler.Solver.regions_per_step s);
  check_bool "fused regions/step <= 4" true
    (Euler.Solver.regions_per_step s <= 4.);
  (* Unfused (the per-loop Fortran shape): 1 dt reduction + 3 x (rhs
     sweep + rk combine) = 7 regions per step on a 1D grid. *)
  let config =
    { Euler.Solver.default_config with Euler.Solver.fused = false }
  in
  let s = make_sod_solver ~config 32 in
  Euler.Solver.run_steps s 3;
  check_float 1e-9 "unfused regions/step" 7.
    (Euler.Solver.regions_per_step s)

(* ------------------------------------------------------------------ *)
(* Two-channel problem                                                 *)
(* ------------------------------------------------------------------ *)

let test_two_channel_shocks_enter () =
  let prob = Euler.Setup.two_channel ~cells_per_h:10 () in
  let s =
    Euler.Solver.create ~config:Euler.Solver.benchmark_config
      ~bcs:prob.Euler.Setup.bcs prob.Euler.Setup.state
  in
  Euler.Solver.run_steps s 20;
  let st = s.Euler.Solver.state in
  (* Gas near the west exit has been overrun by the shock... *)
  let rho_in, u_in, _, _ = Euler.State.primitive st 0 2 in
  check_bool "compressed at west exit" true (rho_in > 1.5);
  check_bool "moving right" true (u_in > 0.5);
  (* ...while the far corner is still quiescent. *)
  let rho_far, u_far, v_far, p_far = Euler.State.primitive st 18 18 in
  check_float 1e-9 "far rho" 1. rho_far;
  check_float 1e-9 "far u" 0. u_far;
  check_float 1e-9 "far v" 0. v_far;
  check_float 1e-9 "far p" 1. p_far

let test_two_channel_symmetry () =
  (* The configuration is symmetric under (x,y) swap; the solution
     must be too. *)
  let prob = Euler.Setup.two_channel ~cells_per_h:8 () in
  let s =
    Euler.Solver.create ~config:Euler.Solver.benchmark_config
      ~bcs:prob.Euler.Setup.bcs prob.Euler.Setup.state
  in
  Euler.Solver.run_steps s 15;
  let st = s.Euler.Solver.state in
  let max_asym = ref 0. in
  for iy = 0 to 15 do
    for ix = 0 to 15 do
      let r1, u1, v1, p1 = Euler.State.primitive st ix iy in
      let r2, u2, v2, p2 = Euler.State.primitive st iy ix in
      max_asym := Float.max !max_asym (Float.abs (r1 -. r2));
      max_asym := Float.max !max_asym (Float.abs (u1 -. v2));
      max_asym := Float.max !max_asym (Float.abs (v1 -. u2));
      max_asym := Float.max !max_asym (Float.abs (p1 -. p2))
    done
  done;
  check_bool "mirror symmetric" true (!max_asym < 1e-11)

(* ------------------------------------------------------------------ *)
(* Array_style and Fortran equivalence                                 *)
(* ------------------------------------------------------------------ *)

let test_array_style_matches_1d () =
  let p1 = Euler.Setup.sod ~nx:64 () in
  let s =
    Euler.Solver.create ~config:Euler.Solver.benchmark_config
      ~bcs:p1.Euler.Setup.bcs p1.Euler.Setup.state
  in
  let p2 = Euler.Setup.sod ~nx:64 () in
  let a = Euler.Array_style.create ~bcs:p2.Euler.Setup.bcs p2.Euler.Setup.state in
  for _ = 1 to 40 do
    ignore (Euler.Solver.step s);
    ignore (Euler.Array_style.step a)
  done;
  check_bool "1d equivalent" true
    (Euler.State.max_abs_diff s.Euler.Solver.state
       (Euler.Array_style.state a)
     < 1e-12);
  check_float 1e-12 "same time" s.Euler.Solver.time
    (Euler.Array_style.time a)

let test_array_style_matches_2d () =
  let p1 = Euler.Setup.two_channel ~cells_per_h:8 () in
  let s =
    Euler.Solver.create ~config:Euler.Solver.benchmark_config
      ~bcs:p1.Euler.Setup.bcs p1.Euler.Setup.state
  in
  let p2 = Euler.Setup.two_channel ~cells_per_h:8 () in
  let a = Euler.Array_style.create ~bcs:p2.Euler.Setup.bcs p2.Euler.Setup.state in
  for _ = 1 to 20 do
    ignore (Euler.Solver.step s);
    ignore (Euler.Array_style.step a)
  done;
  check_bool "2d equivalent" true
    (Euler.State.max_abs_diff s.Euler.Solver.state
       (Euler.Array_style.state a)
     < 1e-11)

let test_array_style_counts_with_loops () =
  let p = Euler.Setup.sod ~nx:32 () in
  let a = Euler.Array_style.create ~bcs:p.Euler.Setup.bcs p.Euler.Setup.state in
  check_bool "nan before first step" true
    (Float.is_nan (Euler.Array_style.with_loops_per_step a));
  ignore (Euler.Array_style.step a);
  check_bool "counts accumulate" true (Euler.Array_style.with_loops a > 50);
  check_bool "per-step sensible" true
    (Euler.Array_style.with_loops_per_step a > 50.)

(* ------------------------------------------------------------------ *)
(* Field_io                                                            *)
(* ------------------------------------------------------------------ *)

let test_field_io_csv () =
  let path = Filename.temp_file "fieldio" ".csv" in
  Euler.Field_io.write_profile_csv ~path
    ~columns:[ ("x", [| 1.; 2. |]); ("y", [| 3.; 4. |]) ];
  let ic = open_in path in
  let l1 = input_line ic and l2 = input_line ic and l3 = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "x,y" l1;
  Alcotest.(check string) "row1" "1,3" l2;
  Alcotest.(check string) "row2" "2,4" l3

let test_field_io_csv_ragged () =
  check_bool "ragged rejected" true
    (try
       Euler.Field_io.write_profile_csv ~path:"/tmp/nope.csv"
         ~columns:[ ("x", [| 1. |]); ("y", [| 1.; 2. |]) ];
       false
     with Invalid_argument _ -> true)

let test_field_io_pgm () =
  let path = Filename.temp_file "fieldio" ".pgm" in
  let t = Tensor.Nd.of_list2 [ [ 0.; 1. ]; [ 0.5; 0.25 ] ] in
  Euler.Field_io.write_pgm ~path t;
  let ic = open_in_bin path in
  let magic = input_line ic in
  let dims = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "magic" "P5" magic;
  Alcotest.(check string) "dims" "2 2" dims

let test_field_io_schlieren () =
  (* Uniform field: schlieren = 1 everywhere; a jump darkens (value
     toward 0) along the discontinuity. *)
  let flat = Tensor.Nd.create [| 4; 4 |] 2. in
  let s = Euler.Field_io.schlieren flat in
  check_float 1e-12 "uniform -> 1" 1. (Tensor.Nd.minval s);
  let jump =
    Tensor.Nd.init [| 4; 4 |] (fun iv -> if iv.(1) < 2 then 1. else 5.)
  in
  let s = Euler.Field_io.schlieren jump in
  check_bool "jump darkens" true (Tensor.Nd.minval s < 0.1)

let test_field_io_vtk () =
  let path = Filename.temp_file "fieldio" ".vtk" in
  let rho = Tensor.Nd.of_list2 [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let p = Tensor.Nd.of_list2 [ [ 5.; 6. ]; [ 7.; 8. ] ] in
  Euler.Field_io.write_vtk ~path ~spacing:(0.5, 0.5)
    [ ("rho", rho); ("p", p) ];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check string) "magic" "# vtk DataFile Version 3.0"
    (List.nth lines 0);
  check_bool "dimensions" true
    (List.mem "DIMENSIONS 3 3 1" lines);
  check_bool "cell data" true (List.mem "CELL_DATA 4" lines);
  check_bool "both fields" true
    (List.mem "SCALARS rho double 1" lines
     && List.mem "SCALARS p double 1" lines);
  (* 2 headers + 2*4 values present after CELL_DATA *)
  check_bool "values" true (List.mem "1" lines && List.mem "8" lines);
  check_bool "shape mismatch rejected" true
    (try
       Euler.Field_io.write_vtk ~path:"/tmp/nope.vtk"
         [ ("a", rho); ("b", Tensor.Nd.of_list2 [ [ 1. ] ]) ];
       false
     with Invalid_argument _ -> true)

let test_field_io_ascii () =
  let s = Euler.Field_io.ascii_profile ~width:10 ~height:4 [| 0.; 1. |] in
  check_bool "profile non-empty" true (String.length s > 0);
  let c =
    Euler.Field_io.ascii_contour ~width:10 ~height:4
      (Tensor.Nd.init [| 3; 3 |] (fun iv -> float_of_int (iv.(0) + iv.(1))))
  in
  check_int "contour size" ((10 + 1) * 4) (String.length c);
  check_int "contour lines" 4
    (String.fold_left (fun n ch -> if ch = '\n' then n + 1 else n) 0 c)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let state_gen =
  QCheck2.Gen.(
    let* rho = float_range 0.1 5. in
    let* u = float_range (-2.) 2. in
    let* v = float_range (-2.) 2. in
    let* p = float_range 0.1 5. in
    return (rho, u, v, p))

let prop_characteristic_inverse =
  QCheck2.Test.make ~name:"eigenvector matrices are mutual inverses"
    ~count:300 state_gen (fun (rho, un, ut, p) ->
      let b = Euler.Characteristic.of_state ~gamma ~rho ~un ~ut ~p in
      mat_mul_ident
        (Euler.Characteristic.left_matrix b)
        (Euler.Characteristic.right_matrix b)
      < 1e-9)

let prop_roe_average_between =
  QCheck2.Test.make ~name:"roe-average eigenvalues lie between states"
    ~count:300
    QCheck2.Gen.(pair state_gen state_gen)
    (fun ((r1, u1, t1, p1), (r2, u2, t2, p2)) ->
      let b =
        Euler.Characteristic.of_roe_average ~gamma ~left:(r1, u1, t1, p1)
          ~right:(r2, u2, t2, p2)
      in
      let _, lmid, _, _ = Euler.Characteristic.eigenvalues b in
      (* The Roe-averaged velocity is a weighted mean of u1, u2. *)
      lmid >= Float.min u1 u2 -. 1e-9 && lmid <= Float.max u1 u2 +. 1e-9)

let prop_riemann_consistent =
  QCheck2.Test.make ~name:"numerical flux is consistent" ~count:200
    state_gen (fun (rho, un, ut, p) ->
      let q = (rho, un, ut, p) in
      let expected = physical_flux q in
      List.for_all
        (fun kind ->
          let f = Euler.Riemann.flux kind ~gamma ~left:q ~right:q in
          let ok = ref true in
          Array.iteri
            (fun k x ->
              if Float.abs (x -. expected.(k))
                 > 1e-8 *. (1. +. Float.abs expected.(k))
              then ok := false)
            f;
          !ok)
        solvers)

let prop_limiters_tvd_bounds =
  QCheck2.Test.make ~name:"limited slope within 2x of both one-sided slopes"
    ~count:500
    QCheck2.Gen.(pair (float_range (-3.) 3.) (float_range (-3.) 3.))
    (fun (a, b) ->
      List.for_all
        (fun lim ->
          let s = Euler.Limiter.apply lim a b in
          if a *. b <= 0. then s = 0.
          else
            Float.abs s <= 2. *. Float.min (Float.abs a) (Float.abs b) +. 1e-12
            && s *. a >= 0.)
        limiters)

let prop_limiters_symmetric =
  QCheck2.Test.make ~name:"limiters are symmetric" ~count:500
    QCheck2.Gen.(pair (float_range (-3.) 3.) (float_range (-3.) 3.))
    (fun (a, b) ->
      List.for_all
        (fun lim ->
          Float.abs
            (Euler.Limiter.apply lim a b -. Euler.Limiter.apply lim b a)
          < 1e-12)
        limiters)

let prop_recon_bounded_tvd =
  QCheck2.Test.make ~name:"TVD interface values within local data range"
    ~count:500
    QCheck2.Gen.(
      let* w0 = float_range (-5.) 5. in
      let* w1 = float_range (-5.) 5. in
      let* w2 = float_range (-5.) 5. in
      let* w3 = float_range (-5.) 5. in
      return (w0, w1, w2, w3))
    (fun (w0, w1, w2, w3) ->
      List.for_all
        (fun k ->
          let wl, wr = Euler.Recon.left_right k w0 w1 w2 w3 in
          let lo = Float.min (Float.min w0 w1) (Float.min w2 w3)
          and hi = Float.max (Float.max w0 w1) (Float.max w2 w3) in
          wl >= lo -. 1e-9 && wl <= hi +. 1e-9 && wr >= lo -. 1e-9
          && wr <= hi +. 1e-9)
        [ Euler.Recon.Piecewise_constant;
          Euler.Recon.Tvd2 Euler.Limiter.Minmod;
          Euler.Recon.Tvd2 Euler.Limiter.Van_leer ])

let prop_exact_riemann_star_positive =
  QCheck2.Test.make ~name:"exact solver star pressure positive" ~count:200
    QCheck2.Gen.(
      let* r1 = float_range 0.1 3. in
      let* p1 = float_range 0.1 3. in
      let* r2 = float_range 0.1 3. in
      let* p2 = float_range 0.1 3. in
      let* u1 = float_range (-0.5) 0.5 in
      let* u2 = float_range (-0.5) 0.5 in
      return ((r1, u1, p1), (r2, u2, p2)))
    (fun (left, right) ->
      let s = Euler.Exact_riemann.solve ~gamma ~left ~right () in
      s.Euler.Exact_riemann.p_star > 0.
      && s.Euler.Exact_riemann.iterations <= 101)

let prop_rh_ratios_monotone =
  QCheck2.Test.make ~name:"post-shock ratios grow with Ms" ~count:100
    QCheck2.Gen.(float_range 1.01 4.9)
    (fun ms ->
      let a = Euler.Rankine_hugoniot.post_shock ~gamma ~ms ~rho0:1. ~p0:1. in
      let b =
        Euler.Rankine_hugoniot.post_shock ~gamma ~ms:(ms +. 0.1) ~rho0:1.
          ~p0:1.
      in
      b.Euler.Rankine_hugoniot.p > a.Euler.Rankine_hugoniot.p
      && b.Euler.Rankine_hugoniot.rho > a.Euler.Rankine_hugoniot.rho
      && a.Euler.Rankine_hugoniot.rho < 6.)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_characteristic_inverse;
      prop_roe_average_between;
      prop_riemann_consistent;
      prop_limiters_tvd_bounds;
      prop_limiters_symmetric;
      prop_recon_bounded_tvd;
      prop_exact_riemann_star_positive;
      prop_rh_ratios_monotone ]

(* ------------------------------------------------------------------ *)
(* Allocation-free hot path: bitwise pins against the boxed APIs       *)
(* ------------------------------------------------------------------ *)

(* The [_into]/[_pr] variants are independent transcriptions of the
   boxed implementations, not wrappers; these pins are what keeps the
   two families in lockstep (max abs diff exactly 0, not within a
   tolerance). *)

let all_recon_kinds =
  List.filter_map
    (fun n -> Option.map (fun k -> (n, k)) (Euler.Recon.of_string n))
    Euler.Recon.all_names

let test_hotpath_recon_pin () =
  let rng = Random.State.make [| 20260806 |] in
  let wl = Array.make 4 0. and wr = Array.make 4 0. in
  List.iter
    (fun (name, kind) ->
      let width = Euler.Recon.stencil_width kind in
      for _ = 1 to 200 do
        let w =
          Array.init width (fun _ -> Random.State.float rng 4. -. 2.)
        in
        let l, r = Euler.Recon.left_right_window kind w in
        Euler.Recon.left_right_into kind w ~wl ~wr ~k:2;
        check_bool (name ^ " left bitwise") true (wl.(2) = l);
        check_bool (name ^ " right bitwise") true (wr.(2) = r)
      done)
    all_recon_kinds

let test_hotpath_characteristic_pin () =
  let rng = Random.State.make [| 7 |] in
  let l = Array.make 16 0.
  and r = Array.make 16 0.
  and ev = Array.make 4 0.
  and pr = Array.make 8 0.
  and q = Array.make 4 0.
  and w_old = Array.make 4 0.
  and w_new = Array.make 4 0. in
  let rand_state () =
    ( 0.1 +. Random.State.float rng 3.,
      Random.State.float rng 4. -. 2.,
      Random.State.float rng 4. -. 2.,
      0.1 +. Random.State.float rng 3. )
  in
  for _ = 1 to 200 do
    let (rho_l, un_l, ut_l, p_l) as left = rand_state () in
    let (rho_r, un_r, ut_r, p_r) as right = rand_state () in
    let basis = Euler.Characteristic.of_roe_average ~gamma ~left ~right in
    pr.(0) <- rho_l; pr.(1) <- un_l; pr.(2) <- ut_l; pr.(3) <- p_l;
    pr.(4) <- rho_r; pr.(5) <- un_r; pr.(6) <- ut_r; pr.(7) <- p_r;
    Euler.Characteristic.roe_into ~gamma ~pr ~l ~r ~ev;
    let lm = Euler.Characteristic.left_matrix basis
    and rm = Euler.Characteristic.right_matrix basis in
    for i = 0 to 15 do
      check_bool "L bitwise" true (l.(i) = lm.(i));
      check_bool "R bitwise" true (r.(i) = rm.(i))
    done;
    let e0, e1, e2, e3 = Euler.Characteristic.eigenvalues basis in
    check_bool "eigenvalues bitwise" true
      (ev.(0) = e0 && ev.(1) = e1 && ev.(2) = e2 && ev.(3) = e3);
    (* project_into with the copied-out matrix reproduces the basis
       projection exactly. *)
    for i = 0 to 3 do
      q.(i) <- Random.State.float rng 2. -. 1.
    done;
    Euler.Characteristic.to_characteristic basis q w_old;
    Euler.Characteristic.project_into lm q w_new;
    for i = 0 to 3 do
      check_bool "projection bitwise" true (w_old.(i) = w_new.(i))
    done
  done

let test_hotpath_riemann_pin () =
  let rng = Random.State.make [| 99 |] in
  let s = Euler.Riemann.make_scratch () in
  let f = Array.make 4 0.
  and fp = Array.make 4 0.
  and pr = Array.make 8 0. in
  List.iter
    (fun (name, kind) ->
      for _ = 1 to 200 do
        let rho_l = 0.1 +. Random.State.float rng 3.
        and un_l = Random.State.float rng 4. -. 2.
        and ut_l = Random.State.float rng 4. -. 2.
        and p_l = 0.1 +. Random.State.float rng 3.
        and rho_r = 0.1 +. Random.State.float rng 3.
        and un_r = Random.State.float rng 4. -. 2.
        and ut_r = Random.State.float rng 4. -. 2.
        and p_r = 0.1 +. Random.State.float rng 3. in
        Euler.Riemann.flux_into kind ~gamma ~rho_l ~un_l ~ut_l ~p_l ~rho_r
          ~un_r ~ut_r ~p_r ~f;
        pr.(0) <- rho_l; pr.(1) <- un_l; pr.(2) <- ut_l; pr.(3) <- p_l;
        pr.(4) <- rho_r; pr.(5) <- un_r; pr.(6) <- ut_r; pr.(7) <- p_r;
        Euler.Riemann.flux_pr_into kind ~gamma ~pr ~s ~f:fp;
        for i = 0 to 3 do
          check_bool (name ^ " flux bitwise") true (f.(i) = fp.(i))
        done
      done)
    Euler.Riemann.all

let test_hotpath_rhs_schedulers_identical () =
  (* The arena-backed RHS must produce bit-identical divergences no
     matter which scheduler (and hence which lane decomposition) runs
     the sweeps: lanes only partition rows/columns, they never change
     the arithmetic.  17x13 exercises uneven chunking with 3 lanes. *)
  let g = Euler.Grid.make ~nx:17 ~ny:13 ~lx:1. ~ly:1. () in
  List.iter
    (fun (name, recon) ->
      let st = Euler.State.create g in
      for o = 0 to g.Euler.Grid.cells - 1 do
        let x = float_of_int o in
        (* Smooth field with an embedded jump; physical everywhere,
           ghosts included. *)
        let jump = if o mod 37 < 18 then 0.8 else 0. in
        let rho = 1. +. (0.3 *. sin (0.05 *. x)) +. jump in
        let u = 0.4 *. cos (0.03 *. x) in
        let v = -0.2 *. sin (0.02 *. x) in
        let p = 1. +. (0.5 *. cos (0.04 *. x)) +. jump in
        st.Euler.State.q.(0).(o) <- rho;
        st.Euler.State.q.(1).(o) <- rho *. u;
        st.Euler.State.q.(2).(o) <- rho *. v;
        st.Euler.State.q.(3).(o) <-
          Euler.Gas.total_energy ~gamma ~rho ~u ~v ~p
      done;
      let cfg = { Euler.Rhs.recon; riemann = Euler.Riemann.Hllc } in
      let dqdt_of exec =
        let d = Array.init 4 (fun _ -> Array.make g.Euler.Grid.cells 0.) in
        Euler.Rhs.compute cfg exec st d;
        Parallel.Exec.shutdown exec;
        d
      in
      let a = dqdt_of (Parallel.Exec.sequential ()) in
      List.iter
        (fun (ename, exec) ->
          let b = dqdt_of exec in
          let diff = ref 0. in
          for k = 0 to 3 do
            for o = 0 to g.Euler.Grid.cells - 1 do
              let d = Float.abs (a.(k).(o) -. b.(k).(o)) in
              if d > !diff then diff := d
            done
          done;
          check_float 0.
            (Printf.sprintf "%s: %s = sequential" name ename)
            0. !diff)
        [ ("spmd(3)", Parallel.Exec.spmd ~lanes:3);
          ("fork-join(3)", Parallel.Exec.fork_join ~lanes:3) ])
    all_recon_kinds

(* ------------------------------------------------------------------ *)
(* Fused stage pipeline (with-loop folding at the solver scale)        *)
(* ------------------------------------------------------------------ *)

(* Advance [steps] steps of the two-channel problem and return the
   final solver plus the dt sequence.  The dt sequence is the most
   sensitive witness: any divergence compounds step over step. *)
let fused_advance ~fused ~exec ~steps config =
  let prob = Euler.Setup.two_channel ~cells_per_h:6 () in
  let s =
    Euler.Solver.create ~exec
      ~config:{ config with Euler.Solver.fused }
      ~bcs:prob.Euler.Setup.bcs prob.Euler.Setup.state
  in
  let dts = Array.init steps (fun _ -> Euler.Solver.step s) in
  (s, dts)

let test_fused_matches_unfused_matrix () =
  (* Fused and unfused pipelines share the exact same phase closures,
     so every scheme combination must agree to the last bit — state
     and dt sequence alike. *)
  List.iter
    (fun recon ->
      List.iter
        (fun riemann ->
          let config =
            { Euler.Solver.default_config with
              Euler.Solver.recon;
              riemann;
              cfl = 0.4 }
          in
          let run fused =
            fused_advance ~fused ~exec:(Parallel.Exec.sequential ())
              ~steps:6 config
          in
          let sf, df = run true and su, du = run false in
          let name =
            Euler.Recon.name recon ^ "+" ^ Euler.Riemann.name riemann
          in
          Alcotest.(check (array (float 0.)))
            (name ^ " dt sequence bitwise") du df;
          check_float 0. (name ^ " states bitwise") 0.
            (Euler.State.max_abs_diff su.Euler.Solver.state
               sf.Euler.Solver.state))
        solvers)
    all_schemes

let test_fused_schedulers_identical () =
  (* The folded dispatch must not depend on how lanes chunk the
     phases: spmd and fork/join, fused and unfused, all equal the
     sequential unfused baseline bitwise. *)
  let config = Euler.Solver.default_config in
  let su, du =
    fused_advance ~fused:false ~exec:(Parallel.Exec.sequential ()) ~steps:6
      config
  in
  List.iter
    (fun (name, exec, fused) ->
      let s, d = fused_advance ~fused ~exec ~steps:6 config in
      Parallel.Exec.shutdown exec;
      Alcotest.(check (array (float 0.))) (name ^ " dt sequence") du d;
      check_float 0. (name ^ " state") 0.
        (Euler.State.max_abs_diff su.Euler.Solver.state s.Euler.Solver.state))
    [ ("seq fused", Parallel.Exec.sequential (), true);
      ("spmd(3) fused", Parallel.Exec.spmd ~lanes:3, true);
      ("fork-join(3) fused", Parallel.Exec.fork_join ~lanes:3, true);
      ("spmd(3) unfused", Parallel.Exec.spmd ~lanes:3, false);
      ("fork-join(3) unfused", Parallel.Exec.fork_join ~lanes:3, false) ]

let test_fused_1d_fallback () =
  (* 1D grids (ny = 1 < ng) take Bc.phases' sequential-fallback phase;
     results must still be bitwise identical, also under spmd. *)
  let run fused exec =
    let prob = Euler.Setup.sod ~nx:40 () in
    let s =
      Euler.Solver.create ~exec
        ~config:{ Euler.Solver.default_config with Euler.Solver.fused }
        ~bcs:prob.Euler.Setup.bcs prob.Euler.Setup.state
    in
    let dts = Array.init 8 (fun _ -> Euler.Solver.step s) in
    Parallel.Exec.shutdown exec;
    (s, dts)
  in
  let su, du = run false (Parallel.Exec.sequential ()) in
  List.iter
    (fun (name, exec) ->
      let s, d = run true exec in
      Alcotest.(check (array (float 0.))) (name ^ " 1d dt sequence") du d;
      check_float 0. (name ^ " 1d state") 0.
        (Euler.State.max_abs_diff su.Euler.Solver.state s.Euler.Solver.state))
    [ ("seq", Parallel.Exec.sequential ());
      ("spmd(3)", Parallel.Exec.spmd ~lanes:3) ]

let test_fused_dt_matches_standalone () =
  (* The in-sweep eigenvalue cache must be bit-identical to a fresh
     standalone GetDT reduction on the advanced state — the dt fold
     changes where the max is computed, never its value. *)
  let exec = Parallel.Exec.spmd ~lanes:3 in
  let s, _ = fused_advance ~fused:true ~exec ~steps:4 Euler.Solver.default_config in
  let cached = Euler.Solver.dt s in
  Parallel.Exec.shutdown exec;
  let standalone =
    Euler.Time_step.dt ~cfl:s.Euler.Solver.config.Euler.Solver.cfl
      (Parallel.Exec.sequential ())
      s.Euler.Solver.state
  in
  check_float 0. "in-sweep dt = standalone dt" standalone cached;
  (* 1D, sequential, default solver path. *)
  let s1 = make_sod_solver 48 in
  Euler.Solver.run_steps s1 5;
  check_float 0. "1d in-sweep dt = standalone dt"
    (Euler.Time_step.dt ~cfl:s1.Euler.Solver.config.Euler.Solver.cfl
       (Parallel.Exec.sequential ())
       s1.Euler.Solver.state)
    (Euler.Solver.dt s1)

(* ------------------------------------------------------------------ *)
(* Tiled domain decomposition                                          *)
(* ------------------------------------------------------------------ *)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

let test_tiling_split () =
  Alcotest.(check (array int)) "7 into 3 (larger first)" [| 3; 2; 2 |]
    (Euler.Tiling.split 7 3);
  Alcotest.(check (array int)) "even split" [| 4; 4; 4 |]
    (Euler.Tiling.split 12 3);
  Alcotest.(check (array int)) "single part" [| 5 |] (Euler.Tiling.split 5 1);
  check_int "extents sum to n" 23
    (Array.fold_left ( + ) 0 (Euler.Tiling.split 23 5));
  expect_invalid "more parts than cells" (fun () -> Euler.Tiling.split 2 3);
  expect_invalid "zero parts" (fun () -> Euler.Tiling.split 4 0)

let test_tiling_1d () =
  (* 1D grids only tile along x: a 1xC plan works, any rows > 1 is
     rejected up front with a message, not a downstream crash. *)
  let g = Euler.Grid.make_1d ~nx:40 ~lx:1. () in
  let p = Euler.Tiling.make ~rows:1 ~cols:3 g in
  check_int "tiles" 3 (Euler.Tiling.tiles p);
  let widths =
    List.init 3 (fun c -> snd (Euler.Tiling.col_extent p c))
  in
  Alcotest.(check (list int)) "column widths" [ 14; 13; 13 ] widths;
  List.iteri
    (fun c g ->
      check_int (Printf.sprintf "tile %d ny" c) 1 g.Euler.Grid.ny)
    (List.init 3 (fun c -> Euler.Tiling.tile_grid p ~r:0 ~c));
  expect_invalid "row tiling of a 1d grid" (fun () ->
      Euler.Tiling.make ~rows:2 ~cols:1 g);
  expect_invalid "tiles narrower than the halo" (fun () ->
      Euler.Tiling.make ~rows:1 ~cols:20 g)

let test_tiling_neighbors () =
  let g = Euler.Grid.make ~nx:24 ~ny:24 ~lx:1. ~ly:1. () in
  let p = Euler.Tiling.make ~rows:3 ~cols:3 g in
  let n r c side = Euler.Tiling.neighbor p ~r ~c side in
  (* South-west corner: physical on W and S, neighbours E and N. *)
  check_bool "corner W physical" true (n 0 0 Euler.Bc.West = None);
  check_bool "corner S physical" true (n 0 0 Euler.Bc.South = None);
  check_bool "corner E" true (n 0 0 Euler.Bc.East = Some (0, 1));
  check_bool "corner N" true (n 0 0 Euler.Bc.North = Some (1, 0));
  (* Interior tile: all four neighbours. *)
  check_bool "interior W" true (n 1 1 Euler.Bc.West = Some (1, 0));
  check_bool "interior E" true (n 1 1 Euler.Bc.East = Some (1, 2));
  check_bool "interior S" true (n 1 1 Euler.Bc.South = Some (0, 1));
  check_bool "interior N" true (n 1 1 Euler.Bc.North = Some (2, 1));
  (* North-east corner mirrors the south-west one. *)
  check_bool "ne corner E physical" true (n 2 2 Euler.Bc.East = None);
  check_bool "ne corner N physical" true (n 2 2 Euler.Bc.North = None);
  check_bool "ne corner W" true (n 2 2 Euler.Bc.West = Some (2, 1));
  check_bool "ne corner S" true (n 2 2 Euler.Bc.South = Some (1, 2))

let test_tiling_gather_scatter_identity () =
  (* scatter then gather must reproduce the monolithic padded array
     byte-for-byte, ghost ring included: the owned ranges partition it
     exactly.  Every padded cell gets a unique value so any overlap,
     gap or misaligned blit shows up. *)
  List.iter
    (fun (rows, cols, nx, ny) ->
      let g =
        if ny = 1 then Euler.Grid.make_1d ~nx ~lx:1. ()
        else Euler.Grid.make ~nx ~ny ~lx:1. ~ly:1. ()
      in
      let src = Euler.State.create g in
      Array.iteri
        (fun k q ->
          Array.iteri
            (fun i _ -> q.(i) <- (float_of_int k *. 1.0e6) +. float_of_int i)
            q)
        src.Euler.State.q;
      let p = Euler.Tiling.make ~rows ~cols g in
      let tiles = Euler.Tiling.states p ~gamma:src.Euler.State.gamma in
      Euler.Tiling.scatter p ~src ~into:tiles;
      let out = Euler.State.create g in
      Euler.Tiling.gather p ~tiles ~into:out;
      let name = Printf.sprintf "%dx%d on %dx%d grid" rows cols nx ny in
      Array.iteri
        (fun k q ->
          check_bool
            (Printf.sprintf "%s var %d bitwise" name k)
            true
            (Array.for_all2 ( = ) q out.Euler.State.q.(k)))
        src.Euler.State.q)
    [ (1, 1, 16, 16); (2, 2, 16, 16); (3, 2, 13, 11); (1, 3, 40, 1) ]

(* Advance the two-channel problem [steps] steps under an R x C
   decomposition; the monolithic baseline is tiles = (1, 1). *)
let tiled_advance ~tiles ~fused ~exec ~steps config =
  let prob = Euler.Setup.two_channel ~cells_per_h:6 () in
  let s =
    Euler.Solver.create ~exec
      ~config:{ config with Euler.Solver.fused; tiles }
      ~bcs:prob.Euler.Setup.bcs prob.Euler.Setup.state
  in
  let dts = Array.init steps (fun _ -> Euler.Solver.step s) in
  (s, dts)

let test_tiled_bitwise_scheme_matrix () =
  (* Every reconstruction x Riemann combination, tiled 2x2 and uneven
     3x2, against the monolithic run: dt sequences float-for-float and
     final states bit-for-bit.  Tiling is a data-layout choice, never
     a numerical one. *)
  List.iter
    (fun recon ->
      List.iter
        (fun riemann ->
          let config =
            { Euler.Solver.default_config with
              Euler.Solver.recon;
              riemann;
              cfl = 0.4 }
          in
          let run tiles =
            tiled_advance ~tiles ~fused:true
              ~exec:(Parallel.Exec.sequential ()) ~steps:4 config
          in
          let sm, dm = run (1, 1) in
          let name =
            Euler.Recon.name recon ^ "+" ^ Euler.Riemann.name riemann
          in
          List.iter
            (fun tiles ->
              let st, dt = run tiles in
              let r, c = tiles in
              let tname = Printf.sprintf "%s %dx%d" name r c in
              Alcotest.(check (array (float 0.)))
                (tname ^ " dt sequence bitwise") dm dt;
              check_float 0. (tname ^ " state bitwise") 0.
                (Euler.State.max_abs_diff sm.Euler.Solver.state
                   (Euler.Solver.current_state st)))
            [ (2, 2); (3, 2) ])
        solvers)
    all_schemes

let test_tiled_schedulers_identical () =
  (* The stitched run must not depend on the scheduler or on fusing:
     all six combinations equal the monolithic sequential baseline
     bitwise, on both an even and an uneven decomposition. *)
  let config = Euler.Solver.default_config in
  let sm, dm =
    tiled_advance ~tiles:(1, 1) ~fused:true
      ~exec:(Parallel.Exec.sequential ()) ~steps:6 config
  in
  List.iter
    (fun tiles ->
      let r, c = tiles in
      List.iter
        (fun (name, exec, fused) ->
          let s, d = tiled_advance ~tiles ~fused ~exec ~steps:6 config in
          let st = Euler.Solver.current_state s in
          Parallel.Exec.shutdown exec;
          let tname = Printf.sprintf "%s %dx%d" name r c in
          Alcotest.(check (array (float 0.))) (tname ^ " dt sequence") dm d;
          check_float 0. (tname ^ " state") 0.
            (Euler.State.max_abs_diff sm.Euler.Solver.state st))
        [ ("seq fused", Parallel.Exec.sequential (), true);
          ("seq unfused", Parallel.Exec.sequential (), false);
          ("spmd(3) fused", Parallel.Exec.spmd ~lanes:3, true);
          ("spmd(3) unfused", Parallel.Exec.spmd ~lanes:3, false);
          ("fork-join(3) fused", Parallel.Exec.fork_join ~lanes:3, true);
          ("fork-join(3) unfused", Parallel.Exec.fork_join ~lanes:3, false) ]
    )
    [ (2, 2); (3, 2) ]

let test_tiled_1d_bitwise () =
  (* Column tiling of a 1D Sod tube (the ny = 1 < ng special case all
     the way through halo exchange and the sequential BC fallback). *)
  let run tiles =
    let prob = Euler.Setup.sod ~nx:40 () in
    let s =
      Euler.Solver.create
        ~config:{ Euler.Solver.default_config with Euler.Solver.tiles }
        ~bcs:prob.Euler.Setup.bcs prob.Euler.Setup.state
    in
    let dts = Array.init 8 (fun _ -> Euler.Solver.step s) in
    (Euler.Solver.current_state s, dts)
  in
  let qm, dm = run (1, 1) in
  let qt, dt = run (1, 3) in
  Alcotest.(check (array (float 0.))) "1d dt sequence" dm dt;
  check_float 0. "1d state" 0. (Euler.State.max_abs_diff qm qt)

let test_tiled_regions_and_allocation () =
  (* The fused tiled step must stay within the folding budget — one
     dispatch per RK stage plus the single first-step GetDT region,
     (1 + 3) + 3 + 3 over 3 steps — and the lane arenas must stop
     growing after the warm-up step (zero steady-state allocation). *)
  let exec = Parallel.Exec.sequential () in
  let prob = Euler.Setup.two_channel ~cells_per_h:6 () in
  let s =
    Euler.Solver.create ~exec
      ~config:{ Euler.Solver.default_config with Euler.Solver.tiles = (2, 2) }
      ~bcs:prob.Euler.Setup.bcs prob.Euler.Setup.state
  in
  Euler.Solver.run_steps s 3;
  check_float 1e-9 "tiled fused regions/step" (10. /. 3.)
    (Euler.Solver.regions_per_step s);
  check_bool "tiled fused regions/step <= 4" true
    (Euler.Solver.regions_per_step s <= 4.);
  let ws = Parallel.Exec.workspace exec in
  let grown = Parallel.Workspace.growths ws in
  Euler.Solver.run_steps s 5;
  check_int "steady-state arena growths" grown (Parallel.Workspace.growths ws)

let test_tiled_ghost_validation () =
  (* Satellite 1: the solver refuses up front when the grid's ghost
     ring (= the inter-tile halo depth) is too shallow for the
     reconstruction stencil. *)
  check_int "pc needs 1" 1 (Euler.Recon.required_ghosts Euler.Recon.Piecewise_constant);
  check_int "weno5 needs 3" 3
    (Euler.Recon.required_ghosts Euler.Recon.Weno5);
  let g = Euler.Grid.make_1d ~ng:1 ~nx:32 ~lx:1. () in
  let st = Euler.State.create g in
  Euler.State.init_primitive st (fun ~x:_ ~y:_ -> (1., 0., 0., 1.));
  let bcs =
    [ (Euler.Bc.West, Euler.Bc.Outflow); (Euler.Bc.East, Euler.Bc.Outflow) ]
  in
  expect_invalid "weno5 on ng=1 grid" (fun () ->
      Euler.Solver.create
        ~config:
          { Euler.Solver.default_config with
            Euler.Solver.recon = Euler.Recon.Weno5 }
        ~bcs st);
  (* pc fits in one ghost layer, so the same grid is accepted. *)
  let s =
    Euler.Solver.create
      ~config:
        { Euler.Solver.default_config with
          Euler.Solver.recon = Euler.Recon.Piecewise_constant;
          riemann = Euler.Riemann.Rusanov }
      ~bcs st
  in
  ignore (Euler.Solver.step s);
  (* And a decomposition whose tiles are narrower than the halo is
     rejected at create, naming the dimension. *)
  let prob = Euler.Setup.sod ~nx:40 () in
  expect_invalid "tiles narrower than halo" (fun () ->
      Euler.Solver.create
        ~config:
          { Euler.Solver.default_config with Euler.Solver.tiles = (1, 20) }
        ~bcs:prob.Euler.Setup.bcs prob.Euler.Setup.state)

(* ------------------------------------------------------------------ *)
(* Double Mach reflection: time-dependent BCs through every path       *)
(* ------------------------------------------------------------------ *)

let dmr_advance ~tiles ~fused ~exec ~steps =
  let prob = Euler.Setup.dmr ~nx:48 () in
  let s =
    Euler.Solver.create ~exec
      ~config:
        { Euler.Solver.benchmark_config with
          Euler.Solver.cfl = 0.4;
          fused;
          tiles }
      ~bcs:prob.Euler.Setup.bcs prob.Euler.Setup.state
  in
  let dts = Array.init steps (fun _ -> Euler.Solver.step s) in
  let q = Euler.Solver.current_state s in
  Parallel.Exec.shutdown exec;
  (q, dts)

let test_dmr_time_dependent_pin () =
  (* The DMR top boundary is Time_dependent — a Segmented split that
     moves with the incident shock — so every stage's ghost fill
     depends on the stage time.  This pins the unfused sequential
     baseline against fused, tiled and threaded runs: if any path
     evaluated the closure at a different time, the states would
     diverge within a step. *)
  let steps = 10 in
  let qm, dm =
    dmr_advance ~tiles:(1, 1) ~fused:false
      ~exec:(Parallel.Exec.sequential ()) ~steps
  in
  (* Sanity: a Mach-10 march that stayed finite. *)
  Array.iter
    (fun comp ->
      Array.iter
        (fun v -> check_bool "dmr finite" true (Float.is_finite v))
        comp)
    qm.Euler.State.q;
  List.iter
    (fun (name, mk_exec, fused, tiles) ->
      let q, d = dmr_advance ~tiles ~fused ~exec:(mk_exec ()) ~steps in
      Alcotest.(check (array (float 0.))) (name ^ " dt sequence") dm d;
      check_float 0. (name ^ " state") 0. (Euler.State.max_abs_diff qm q))
    [ ("seq fused", Parallel.Exec.sequential, true, (1, 1));
      ("spmd(3) fused", (fun () -> Parallel.Exec.spmd ~lanes:3), true, (1, 1));
      ( "fork-join(3) fused",
        (fun () -> Parallel.Exec.fork_join ~lanes:3),
        true,
        (1, 1) );
      ( "spmd(3) unfused",
        (fun () -> Parallel.Exec.spmd ~lanes:3),
        false,
        (1, 1) );
      ("seq fused 2x2", Parallel.Exec.sequential, true, (2, 2));
      ("seq unfused 2x2", Parallel.Exec.sequential, false, (2, 2));
      ( "spmd(3) fused 2x2",
        (fun () -> Parallel.Exec.spmd ~lanes:3),
        true,
        (2, 2) );
      ( "fork-join(3) fused 3x2",
        (fun () -> Parallel.Exec.fork_join ~lanes:3),
        true,
        (3, 2) ) ]

let () =
  Alcotest.run "euler"
    [ ( "gas",
        [ Alcotest.test_case "roundtrip" `Quick test_gas_roundtrip;
          Alcotest.test_case "sound speed" `Quick test_gas_sound_speed;
          Alcotest.test_case "enthalpy" `Quick test_gas_enthalpy;
          Alcotest.test_case "is_physical" `Quick test_gas_physical ] );
      ( "grid",
        [ Alcotest.test_case "geometry" `Quick test_grid_geometry;
          Alcotest.test_case "offsets unique" `Quick test_grid_offset_unique;
          Alcotest.test_case "1d" `Quick test_grid_1d;
          Alcotest.test_case "invalid" `Quick test_grid_invalid ] );
      ( "state",
        [ Alcotest.test_case "primitive roundtrip" `Quick
            test_state_primitive_roundtrip;
          Alcotest.test_case "totals" `Quick test_state_totals;
          Alcotest.test_case "fields" `Quick test_state_fields;
          Alcotest.test_case "copy/blit/diff" `Quick
            test_state_copy_blit_diff ] );
      ( "limiter",
        [ Alcotest.test_case "zero at extrema" `Quick
            test_limiter_zero_at_extrema;
          Alcotest.test_case "linear preserved" `Quick
            test_limiter_linear_preserved;
          Alcotest.test_case "specific values" `Quick
            test_limiter_specific_values;
          Alcotest.test_case "names" `Quick test_limiter_names ] );
      ( "characteristic",
        [ Alcotest.test_case "L R = I" `Quick test_characteristic_inverse;
          Alcotest.test_case "roundtrip" `Quick test_characteristic_roundtrip;
          Alcotest.test_case "eigenvalues" `Quick
            test_characteristic_eigenvalues;
          Alcotest.test_case "roe of equal states" `Quick
            test_characteristic_roe_symmetric;
          Alcotest.test_case "rejects non-physical" `Quick
            test_characteristic_rejects_bad ] );
      ( "riemann",
        [ Alcotest.test_case "consistency" `Quick test_riemann_consistency;
          Alcotest.test_case "supersonic upwind" `Quick
            test_riemann_supersonic_upwind;
          Alcotest.test_case "contact resolution" `Quick
            test_riemann_sod_star_values;
          Alcotest.test_case "rejects non-physical" `Quick
            test_riemann_rejects_bad ] );
      ( "recon",
        [ Alcotest.test_case "constant" `Quick test_recon_constant;
          Alcotest.test_case "linear exact" `Quick test_recon_linear_exact;
          Alcotest.test_case "pc" `Quick test_recon_pc;
          Alcotest.test_case "monotone at jump" `Quick
            test_recon_monotone_at_jump;
          Alcotest.test_case "weno weights" `Quick test_recon_weno_weights;
          Alcotest.test_case "weno5" `Quick test_recon_weno5;
          Alcotest.test_case "parsing" `Quick test_recon_parsing;
          Alcotest.test_case "ghost widths" `Quick test_recon_ghosts ] );
      ( "rankine-hugoniot",
        [ Alcotest.test_case "weak shock limit" `Quick
            test_rh_weak_shock_limit;
          Alcotest.test_case "Ms = 2.2 values" `Quick test_rh_ms22;
          Alcotest.test_case "conservation across shock" `Quick
            test_rh_conservation;
          Alcotest.test_case "supersonic exit" `Quick
            test_rh_supersonic_exit ] );
      ( "exact-riemann",
        [ Alcotest.test_case "sod star" `Quick test_exact_sod_star;
          Alcotest.test_case "sod sampled states" `Quick
            test_exact_sod_sampled_states;
          Alcotest.test_case "symmetric problem" `Quick
            test_exact_symmetric_problem;
          Alcotest.test_case "vacuum detected" `Quick
            test_exact_vacuum_detected;
          Alcotest.test_case "fan continuous" `Quick
            test_exact_rarefaction_continuous ] );
      ( "bc",
        [ Alcotest.test_case "outflow" `Quick test_bc_outflow;
          Alcotest.test_case "reflective" `Quick test_bc_reflective;
          Alcotest.test_case "inflow" `Quick test_bc_inflow;
          Alcotest.test_case "segmented" `Quick test_bc_segmented;
          Alcotest.test_case "nested rejected" `Quick
            test_bc_nested_segmented_rejected;
          Alcotest.test_case "time-dependent" `Quick test_bc_time_dependent ]
      );
      ( "time-step",
        [ Alcotest.test_case "uniform EV" `Quick test_dt_uniform;
          Alcotest.test_case "1d ignores y" `Quick test_dt_1d_ignores_y;
          Alcotest.test_case "invalid cfl" `Quick test_dt_invalid_cfl ] );
      ( "solver",
        [ Alcotest.test_case "uniform stationary" `Quick
            test_solver_uniform_stationary;
          Alcotest.test_case "conservation" `Quick test_solver_conservation;
          Alcotest.test_case "sod accuracy" `Quick test_solver_sod_accuracy;
          Alcotest.test_case "all configs stable" `Slow
            test_solver_sod_all_configs_stable;
          Alcotest.test_case "123 positivity" `Quick
            test_solver_123_positivity;
          Alcotest.test_case "smooth self-convergence" `Quick
            test_solver_convergence_order;
          Alcotest.test_case "rk orders agree" `Quick
            test_solver_rk_orders_agree;
          Alcotest.test_case "run_until exact" `Quick
            test_solver_run_until_exact;
          Alcotest.test_case "regions counted" `Quick
            test_solver_regions_counted ] );
      ( "two-channel",
        [ Alcotest.test_case "shocks enter" `Quick
            test_two_channel_shocks_enter;
          Alcotest.test_case "diagonal symmetry" `Quick
            test_two_channel_symmetry ] );
      ( "array-style",
        [ Alcotest.test_case "matches 1d" `Quick test_array_style_matches_1d;
          Alcotest.test_case "matches 2d" `Quick test_array_style_matches_2d;
          Alcotest.test_case "with-loop accounting" `Quick
            test_array_style_counts_with_loops ] );
      ( "field-io",
        [ Alcotest.test_case "csv" `Quick test_field_io_csv;
          Alcotest.test_case "csv ragged" `Quick test_field_io_csv_ragged;
          Alcotest.test_case "pgm" `Quick test_field_io_pgm;
          Alcotest.test_case "schlieren" `Quick test_field_io_schlieren;
          Alcotest.test_case "vtk" `Quick test_field_io_vtk;
          Alcotest.test_case "ascii" `Quick test_field_io_ascii ] );
      ( "hotpath",
        [ Alcotest.test_case "recon into pins window" `Quick
            test_hotpath_recon_pin;
          Alcotest.test_case "characteristic into pins basis" `Quick
            test_hotpath_characteristic_pin;
          Alcotest.test_case "riemann pr pins flux" `Quick
            test_hotpath_riemann_pin;
          Alcotest.test_case "rhs schedulers bit-identical" `Quick
            test_hotpath_rhs_schedulers_identical ] );
      ( "fused",
        [ Alcotest.test_case "matches unfused across schemes" `Quick
            test_fused_matches_unfused_matrix;
          Alcotest.test_case "schedulers bit-identical" `Quick
            test_fused_schedulers_identical;
          Alcotest.test_case "1d fallback bit-identical" `Quick
            test_fused_1d_fallback;
          Alcotest.test_case "in-sweep dt = standalone" `Quick
            test_fused_dt_matches_standalone ] );
      ( "tiling",
        [ Alcotest.test_case "split arithmetic" `Quick test_tiling_split;
          Alcotest.test_case "1d column tiling" `Quick test_tiling_1d;
          Alcotest.test_case "neighbour map" `Quick test_tiling_neighbors;
          Alcotest.test_case "gather . scatter = id" `Quick
            test_tiling_gather_scatter_identity;
          Alcotest.test_case "bitwise across schemes" `Quick
            test_tiled_bitwise_scheme_matrix;
          Alcotest.test_case "bitwise across schedulers" `Quick
            test_tiled_schedulers_identical;
          Alcotest.test_case "1d bitwise" `Quick test_tiled_1d_bitwise;
          Alcotest.test_case "regions and allocation" `Quick
            test_tiled_regions_and_allocation;
          Alcotest.test_case "ghost/halo validation" `Quick
            test_tiled_ghost_validation;
          Alcotest.test_case "dmr time-dependent bc pin" `Quick
            test_dmr_time_dependent_pin ] );
      ("properties", qcheck_cases) ]
