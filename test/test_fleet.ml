(* Tests for the fleet job engine: descriptor round trips, fair-share
   queue ordering under mixed priorities, the bitwise
   preempt-requeue-resume pin across all three schedulers, failed-job
   isolation, inbox exactly-once semantics, and crash-recovery of the
   serve loop (a crash mid-fleet is simulated by raising out of the
   event hook, which loses all in-memory state exactly like a kill -9;
   the restarted server must adopt the orphans and finish every job
   exactly once). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fleet-test-%d-%d" (Unix.getpid ())
         (Random.int 1_000_000))
  in
  Persist.Checkpoint.mkdir_p dir;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      try rm dir with Sys_error _ -> ())
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let job ?(submitter = "anon") ?(priority = 0) ?nx ?recon ?riemann ?tiles
    ?(scenario = "sod") id target =
  Fleet.Job.make ~submitter ~priority ?nx ?recon ?riemann ?tiles ~id ~scenario
    target

(* ------------------------------------------------------------------ *)
(* Job descriptors                                                     *)
(* ------------------------------------------------------------------ *)

let test_job_roundtrip () =
  let jobs =
    [ job "plain" (Fleet.Job.Steps 100);
      job ~submitter:"alice" ~priority:7 ~nx:96 ~recon:Euler.Recon.Weno3
        ~riemann:Euler.Riemann.Hllc "fancy" (Fleet.Job.Steps 40);
      job ~scenario:"quadrant" ~nx:32 ~tiles:(2, 2) "tiled"
        (Fleet.Job.Until 0.15) ]
  in
  List.iter
    (fun (j : Fleet.Job.t) ->
      let j' = Fleet.Job.of_kv ~id:j.Fleet.Job.id (Fleet.Job.to_kv j) in
      check_bool ("kv roundtrip " ^ j.Fleet.Job.id) true (j = j'))
    jobs;
  (* File round trip too (atomic write + parse). *)
  with_tmpdir (fun dir ->
      List.iter
        (fun (j : Fleet.Job.t) ->
          let path = Filename.concat dir (j.Fleet.Job.id ^ ".job") in
          Fleet.Job.save ~path j;
          check_bool ("file roundtrip " ^ j.Fleet.Job.id) true
            (Fleet.Job.load ~id:j.Fleet.Job.id ~path = j))
        jobs)

let test_job_rejects () =
  let rejects name kvs =
    check_bool name true
      (try ignore (Fleet.Job.of_kv ~id:"j" kvs); false
       with Fleet.Job.Invalid _ -> true)
  in
  rejects "missing header" [ ("scenario", "sod"); ("steps", "5") ];
  rejects "missing scenario" [ ("fleetjob", "1"); ("steps", "5") ];
  rejects "missing target" [ ("fleetjob", "1"); ("scenario", "sod") ];
  rejects "two targets"
    [ ("fleetjob", "1"); ("scenario", "sod"); ("steps", "5");
      ("t_end", "0.1") ];
  rejects "unknown key"
    [ ("fleetjob", "1"); ("scenario", "sod"); ("steps", "5");
      ("wibble", "1") ];
  rejects "duplicate key"
    [ ("fleetjob", "1"); ("scenario", "sod"); ("scenario", "sod");
      ("steps", "5") ];
  rejects "bad tiles"
    [ ("fleetjob", "1"); ("scenario", "sod"); ("steps", "5");
      ("tiles", "2by2") ];
  rejects "bad enum"
    [ ("fleetjob", "1"); ("scenario", "sod"); ("steps", "5");
      ("recon", "weno99") ];
  check_bool "bad id" true
    (try ignore (job "no/slashes" (Fleet.Job.Steps 1)); false
     with Fleet.Job.Invalid _ -> true);
  (* An unknown scenario parses (it fails at materialisation, as a
     per-job Failed outcome) but classifies as large. *)
  let j = job ~scenario:"not-a-scenario" "weird" (Fleet.Job.Steps 1) in
  check_int "unknown scenario is large" max_int (Fleet.Job.est_cells j)

(* ------------------------------------------------------------------ *)
(* Fair-share queue                                                    *)
(* ------------------------------------------------------------------ *)

let test_queue_fair_share () =
  let q = Fleet.Queue.create () in
  List.iter (Fleet.Queue.submit q)
    [ job ~submitter:"alice" ~priority:0 "a1" (Fleet.Job.Steps 1);
      job ~submitter:"alice" ~priority:9 "a2" (Fleet.Job.Steps 1);
      job ~submitter:"bob" ~priority:0 "b1" (Fleet.Job.Steps 1);
      job ~submitter:"carol" ~priority:5 "c1" (Fleet.Job.Steps 1) ];
  let take () =
    match Fleet.Queue.take q with
    | Some j -> j.Fleet.Job.id
    | None -> "none"
  in
  (* All services zero: submitters alternate alphabetically, and
     within alice the higher priority goes first. *)
  check_string "alice's high-priority job first" "a2" (take ());
  Fleet.Queue.charge q ~submitter:"alice" 100.;
  check_string "bob next (least service, name tie-break)" "b1" (take ());
  Fleet.Queue.charge q ~submitter:"bob" 50.;
  check_string "carol next" "c1" (take ());
  Fleet.Queue.charge q ~submitter:"carol" 200.;
  (* alice (100) has burned less than carol (200); bob is empty. *)
  check_string "alice again" "a1" (take ());
  check_string "drained" "none" (take ());
  check_bool "empty" true (Fleet.Queue.is_empty q)

let test_queue_requeue_rank () =
  let q = Fleet.Queue.create () in
  List.iter (Fleet.Queue.submit q)
    [ job "d1" (Fleet.Job.Steps 1); job "d2" (Fleet.Job.Steps 1);
      job "d3" (Fleet.Job.Steps 1) ];
  (match Fleet.Queue.take q with
   | Some j ->
     check_string "fifo head" "d1" j.Fleet.Job.id;
     (* Preemption: d1 comes back but keeps its original rank, so it
        runs again before d2. *)
     Fleet.Queue.submit q j
   | None -> Alcotest.fail "expected d1");
  (match Fleet.Queue.take q with
   | Some j -> check_string "requeued job keeps its turn" "d1" j.Fleet.Job.id
   | None -> Alcotest.fail "expected d1 again");
  (* Duplicate pending ids are a caller bug. *)
  check_bool "duplicate pending id rejected" true
    (try Fleet.Queue.submit q (job "d2" (Fleet.Job.Steps 1)); false
     with Invalid_argument _ -> true);
  check_int "two left" 2 (Fleet.Queue.pending q);
  Alcotest.(check (list string)) "introspection order" [ "d2"; "d3" ]
    (List.map (fun (j : Fleet.Job.t) -> j.Fleet.Job.id) (Fleet.Queue.jobs q))

let test_queue_eligible () =
  let q = Fleet.Queue.create () in
  List.iter (Fleet.Queue.submit q)
    [ job ~nx:100 "big" (Fleet.Job.Steps 1);
      job ~nx:10 "small" (Fleet.Job.Steps 1) ];
  (match
     Fleet.Queue.take q ~eligible:(fun j -> Fleet.Job.est_cells j <= 32)
   with
   | Some j -> check_string "predicate filters" "small" j.Fleet.Job.id
   | None -> Alcotest.fail "expected the small job");
  check_int "big still pending" 1 (Fleet.Queue.pending q)

(* ------------------------------------------------------------------ *)
(* Scheduler: the bitwise preemption pin                               *)
(* ------------------------------------------------------------------ *)

(* A preempted job's final snapshot must be byte-for-byte the
   uninterrupted run's, under every scheduler, through both the
   batched-small and the large-job paths. *)
let bitwise_preemption ~make_exec ~small_cells () =
  let steps = 40 in
  let the_job = job ~nx:48 "pin" (Fleet.Job.Steps steps) in
  (* Uninterrupted: one sequential march of the same descriptor. *)
  let expected =
    let inst =
      Engine.Registry.create
        ~exec:(Parallel.Exec.sequential ())
        ~config:(Fleet.Job.config the_job)
        the_job.Fleet.Job.backend
        (Fleet.Job.problem the_job)
    in
    ignore (Engine.Run.run_steps inst steps);
    Persist.Snapshot.encode (Engine.Backend.snapshot inst)
  in
  with_tmpdir (fun dir ->
      let exec = make_exec () in
      let cfg =
        Fleet.Scheduler.config ~exec ~slice_steps:7 ~small_cells
          ~ckpt_root:dir ()
      in
      let q = Fleet.Queue.create () in
      Fleet.Queue.submit q the_job;
      let outcomes = Fleet.Scheduler.drain cfg q in
      Parallel.Exec.shutdown exec;
      match outcomes with
      | [ o ] ->
        check_bool "done" true (o.Fleet.Scheduler.status = Fleet.Scheduler.Done);
        check_int "ran to target" steps o.Fleet.Scheduler.steps;
        check_bool "was preempted" true (o.Fleet.Scheduler.preemptions >= 5);
        check_int "resumed as often as preempted"
          o.Fleet.Scheduler.preemptions o.Fleet.Scheduler.resumes;
        (match o.Fleet.Scheduler.final_ckpt with
         | Some path ->
           check_bool "final snapshot bitwise-identical" true
             (read_file path = expected)
         | None -> Alcotest.fail "expected a final checkpoint")
      | os -> Alcotest.fail (Printf.sprintf "expected 1 outcome, got %d"
                               (List.length os)))

let test_bitwise_seq_batched =
  bitwise_preemption ~make_exec:Parallel.Exec.sequential ~small_cells:4096

let test_bitwise_spmd_batched =
  bitwise_preemption
    ~make_exec:(fun () -> Parallel.Exec.spmd ~lanes:2)
    ~small_cells:4096

let test_bitwise_forkjoin_batched =
  bitwise_preemption
    ~make_exec:(fun () -> Parallel.Exec.fork_join ~lanes:2)
    ~small_cells:4096

(* small_cells 0 forces the large-job path: the instance materialises
   directly on the shared exec. *)
let test_bitwise_spmd_large =
  bitwise_preemption
    ~make_exec:(fun () -> Parallel.Exec.spmd ~lanes:2)
    ~small_cells:0

let test_until_target_bitwise () =
  let t_end = 0.12 in
  let the_job = job ~nx:48 "timed" (Fleet.Job.Until t_end) in
  let expected, exp_steps =
    let inst =
      Engine.Registry.create
        ~exec:(Parallel.Exec.sequential ())
        ~config:(Fleet.Job.config the_job)
        "reference"
        (Fleet.Job.problem the_job)
    in
    ignore (Engine.Run.run_until inst t_end);
    ( Persist.Snapshot.encode (Engine.Backend.snapshot inst),
      Engine.Backend.steps inst )
  in
  with_tmpdir (fun dir ->
      let cfg = Fleet.Scheduler.config ~slice_steps:5 ~ckpt_root:dir () in
      let q = Fleet.Queue.create () in
      Fleet.Queue.submit q the_job;
      match Fleet.Scheduler.drain cfg q with
      | [ o ] ->
        check_bool "done" true (o.Fleet.Scheduler.status = Fleet.Scheduler.Done);
        check_int "same step count" exp_steps o.Fleet.Scheduler.steps;
        check_bool "preempted at least once" true
          (o.Fleet.Scheduler.preemptions >= 1);
        (match o.Fleet.Scheduler.final_ckpt with
         | Some path ->
           check_bool "timed job bitwise-identical" true
             (read_file path = expected)
         | None -> Alcotest.fail "expected a final checkpoint")
      | os -> Alcotest.fail (Printf.sprintf "expected 1 outcome, got %d"
                               (List.length os)))

let test_failed_job_isolated () =
  with_tmpdir (fun dir ->
      let cfg = Fleet.Scheduler.config ~slice_steps:10 ~ckpt_root:dir () in
      let q = Fleet.Queue.create () in
      List.iter (Fleet.Queue.submit q)
        [ job ~nx:32 "ok-1" (Fleet.Job.Steps 12);
          job ~scenario:"not-a-scenario" "doomed" (Fleet.Job.Steps 12);
          job ~nx:32 "ok-2" (Fleet.Job.Steps 12) ];
      let outcomes = Fleet.Scheduler.drain cfg q in
      check_int "all three reported" 3 (List.length outcomes);
      List.iter
        (fun (o : Fleet.Scheduler.outcome) ->
          match o.Fleet.Scheduler.job.Fleet.Job.id with
          | "doomed" ->
            check_bool "bad job failed with a reason" true
              (match o.Fleet.Scheduler.status with
               | Fleet.Scheduler.Failed msg ->
                 String.length msg > 0
               | Fleet.Scheduler.Done -> false)
          | _ ->
            check_bool "good jobs unaffected" true
              (o.Fleet.Scheduler.status = Fleet.Scheduler.Done
               && o.Fleet.Scheduler.steps = 12))
        outcomes)

(* ------------------------------------------------------------------ *)
(* Inbox                                                               *)
(* ------------------------------------------------------------------ *)

let test_inbox_lifecycle () =
  with_tmpdir (fun root ->
      let inbox = Fleet.Inbox.make root in
      let j = job ~nx:32 "life" (Fleet.Job.Steps 4) in
      ignore (Fleet.Inbox.submit inbox j);
      check_bool "duplicate submit rejected" true
        (try ignore (Fleet.Inbox.submit inbox j); false
         with Invalid_argument _ -> true);
      (* Garbage and scratch files are invisible to the protocol. *)
      Out_channel.with_open_bin
        (Filename.concat (Fleet.Inbox.inbox_dir inbox) "half.job.tmp")
        (fun oc -> Out_channel.output_string oc "fleetjob 1\n");
      Out_channel.with_open_bin
        (Filename.concat (Fleet.Inbox.inbox_dir inbox) "junk.job")
        (fun oc -> Out_channel.output_string oc "not a job at all");
      check_int "claimable counts only job files" 2
        (Fleet.Inbox.to_claim inbox);
      let jobs, bad = Fleet.Inbox.claim inbox in
      check_int "one parses" 1 (List.length jobs);
      check_bool "parsed job round-tripped" true (List.hd jobs = j);
      check_int "one rejected" 1 (List.length bad);
      check_string "rejected by id" "junk" (fst (List.hd bad));
      check_int "inbox emptied of job files" 0 (Fleet.Inbox.to_claim inbox);
      Alcotest.(check (list string)) "claimed ids active" [ "junk"; "life" ]
        (Fleet.Inbox.active_ids inbox);
      (* Finalize: result lands, active tombstone goes. *)
      Fleet.Inbox.finalize inbox ~id:"life" [ ("status", "done") ];
      Fleet.Inbox.finalize inbox ~id:"junk"
        [ ("status", "failed"); ("error", "unparsable") ];
      check_bool "active clear" true (Fleet.Inbox.active_ids inbox = []);
      (match Fleet.Inbox.result inbox ~id:"life" with
       | Some kvs -> check_string "status" "done" (List.assoc "status" kvs)
       | None -> Alcotest.fail "expected a result");
      check_int "results listed" 2 (List.length (Fleet.Inbox.results inbox)))

let test_inbox_adopt () =
  with_tmpdir (fun root ->
      let inbox = Fleet.Inbox.make root in
      ignore (Fleet.Inbox.submit inbox (job ~nx:32 "r1" (Fleet.Job.Steps 4)));
      ignore (Fleet.Inbox.submit inbox (job ~nx:32 "r2" (Fleet.Job.Steps 4)));
      let _ = Fleet.Inbox.claim inbox in
      (* Simulate the narrow crash window: r1's result was written but
         its active file not yet unlinked. *)
      Persist.Atomic_write.write_string
        (Filename.concat (Fleet.Inbox.done_dir inbox) "r1.result")
        "status done\n";
      let adopted, bad = Fleet.Inbox.adopt inbox in
      check_bool "no parse failures" true (bad = []);
      Alcotest.(check (list string)) "only the unfinished job re-enqueues"
        [ "r2" ]
        (List.map (fun (j : Fleet.Job.t) -> j.Fleet.Job.id) adopted);
      check_bool "r1 tombstone removed" true
        (Fleet.Inbox.active_ids inbox = [ "r2" ]))

(* ------------------------------------------------------------------ *)
(* Serve: drain end-to-end, crash recovery, exactly-once               *)
(* ------------------------------------------------------------------ *)

let serve_cfg ?on_event inbox root =
  ignore root;
  let sched =
    Fleet.Scheduler.config ~slice_steps:9
      ~ckpt_root:(Fleet.Inbox.ckpt_root inbox) ()
  in
  let cfg =
    Fleet.Serve.config ~drain:true ~poll_s:0.01 ~log:(fun _ -> ()) sched
  in
  fun () -> Fleet.Serve.run ?on_event inbox cfg

let test_serve_drain () =
  with_tmpdir (fun root ->
      let inbox = Fleet.Inbox.make root in
      List.iter
        (fun i ->
          ignore
            (Fleet.Inbox.submit inbox
               (job ~nx:32
                  ~submitter:[| "alice"; "bob" |].(i mod 2)
                  (Printf.sprintf "d%d" i) (Fleet.Job.Steps 24))))
        [ 0; 1; 2; 3; 4 ];
      let t = (serve_cfg inbox root) () in
      check_int "all completed" 5 t.Fleet.Telemetry.completed;
      check_int "none failed" 0 t.Fleet.Telemetry.failed;
      check_bool "preemptions happened" true (t.Fleet.Telemetry.preemptions > 0);
      check_int "five results on disk" 5
        (List.length (Fleet.Inbox.results inbox));
      List.iter
        (fun (_, kvs) ->
          check_string "every result done" "done" (List.assoc "status" kvs))
        (Fleet.Inbox.results inbox))

exception Crash

let test_serve_crash_recovery () =
  with_tmpdir (fun root ->
      let inbox = Fleet.Inbox.make root in
      List.iter
        (fun i ->
          ignore
            (Fleet.Inbox.submit inbox
               (job ~nx:32 (Printf.sprintf "c%d" i) (Fleet.Job.Steps 24))))
        [ 0; 1; 2; 3; 4 ];
      (* First incarnation dies after two completions.  Raising out of
         the event hook unwinds through the scheduler and serve loop,
         losing the in-memory queue — the same state a kill -9 leaves:
         some results written, active files for the rest, checkpoints
         from slices that ran. *)
      let completed = ref 0 in
      (try
         ignore
           ((serve_cfg
               ~on_event:(fun ev ->
                 match ev with
                 | Fleet.Scheduler.Completed _ ->
                   incr completed;
                   if !completed = 2 then raise Crash
                 | _ -> ())
               inbox root)
              ())
       with Crash -> ());
      let pre_crash = Fleet.Inbox.results inbox in
      check_int "two results before the crash" 2 (List.length pre_crash);
      let pre_bytes =
        List.map
          (fun (id, _) ->
            ( id,
              read_file
                (Filename.concat (Fleet.Inbox.done_dir inbox)
                   (id ^ ".result")) ))
          pre_crash
      in
      check_bool "unfinished jobs left active" true
        (List.length (Fleet.Inbox.active_ids inbox) = 3);
      (* Second incarnation: adopt, resume from checkpoints, finish. *)
      let t = (serve_cfg inbox root) () in
      check_int "restart finishes the remaining three" 3
        t.Fleet.Telemetry.completed;
      check_bool "restart resumed from checkpoints" true
        (t.Fleet.Telemetry.resumes > 0);
      check_int "exactly five results total" 5
        (List.length (Fleet.Inbox.results inbox));
      check_bool "active set clear" true (Fleet.Inbox.active_ids inbox = []);
      List.iter
        (fun (_, kvs) ->
          check_string "every job done exactly once" "done"
            (List.assoc "status" kvs))
        (Fleet.Inbox.results inbox);
      (* Pre-crash results were never rewritten. *)
      List.iter
        (fun (id, bytes) ->
          check_bool ("pre-crash result untouched: " ^ id) true
            (read_file
               (Filename.concat (Fleet.Inbox.done_dir inbox) (id ^ ".result"))
             = bytes))
        pre_bytes)

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let test_percentiles () =
  let xs = Array.init 10 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-12)) "p50" 5. (Fleet.Telemetry.percentile 50. xs);
  Alcotest.(check (float 1e-12)) "p99" 10. (Fleet.Telemetry.percentile 99. xs);
  Alcotest.(check (float 1e-12)) "p100" 10.
    (Fleet.Telemetry.percentile 100. xs);
  Alcotest.(check (float 1e-12)) "singleton" 42.
    (Fleet.Telemetry.percentile 99. [| 42. |]);
  Alcotest.(check (float 1e-12)) "empty" 0.
    (Fleet.Telemetry.percentile 50. [||]);
  (* Unsorted input is fine; the caller's array is not mutated. *)
  let ys = [| 3.; 1.; 2. |] in
  Alcotest.(check (float 1e-12)) "unsorted" 2.
    (Fleet.Telemetry.percentile 50. ys);
  check_bool "input untouched" true (ys = [| 3.; 1.; 2. |])

let () =
  Alcotest.run "fleet"
    [ ( "job",
        [ Alcotest.test_case "kv/file roundtrip" `Quick test_job_roundtrip;
          Alcotest.test_case "malformed descriptors rejected" `Quick
            test_job_rejects ] );
      ( "queue",
        [ Alcotest.test_case "fair share under mixed priorities" `Quick
            test_queue_fair_share;
          Alcotest.test_case "requeue keeps submission rank" `Quick
            test_queue_requeue_rank;
          Alcotest.test_case "eligibility predicate" `Quick
            test_queue_eligible ] );
      ( "scheduler",
        [ Alcotest.test_case "preempt/resume bitwise (seq, batched)" `Quick
            test_bitwise_seq_batched;
          Alcotest.test_case "preempt/resume bitwise (spmd, batched)" `Quick
            test_bitwise_spmd_batched;
          Alcotest.test_case "preempt/resume bitwise (forkjoin, batched)"
            `Quick test_bitwise_forkjoin_batched;
          Alcotest.test_case "preempt/resume bitwise (spmd, large path)"
            `Quick test_bitwise_spmd_large;
          Alcotest.test_case "timed target bitwise" `Quick
            test_until_target_bitwise;
          Alcotest.test_case "failed job isolated" `Quick
            test_failed_job_isolated ] );
      ( "inbox",
        [ Alcotest.test_case "lifecycle and exactly-once" `Quick
            test_inbox_lifecycle;
          Alcotest.test_case "adopt reconciles the crash window" `Quick
            test_inbox_adopt ] );
      ( "serve",
        [ Alcotest.test_case "drain end-to-end" `Quick test_serve_drain;
          Alcotest.test_case "crash mid-fleet, restart, exactly once" `Quick
            test_serve_crash_recovery ] );
      ( "telemetry",
        [ Alcotest.test_case "nearest-rank percentiles" `Quick
            test_percentiles ] ) ]
